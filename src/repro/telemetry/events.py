"""Typed, schema-versioned telemetry events of the serving stack.

Every event is a small frozen dataclass carrying a monotonic timestamp
(``t``, stamped at construction on the publisher's clock) and, where the
event concerns specific requests, the **trace ids** of those requests.  A
trace id is assigned by :meth:`ModelServer.submit
<repro.serve.server.ModelServer.submit>` and rides on the request through
batch coalescing, lane dispatch, shard evaluation and reply resolution, so
one request's full lifecycle is reconstructable from its event stream:
``RequestSubmitted`` → ``BatchClosed`` (its batch) → ``BatchServed`` (and,
on the failure paths, ``WorkerCrashed`` / ``JobTimedOut`` naming the same
ids).

Events serialise to plain JSON-able dicts via :meth:`TelemetryEvent.as_dict`
— the payload of the gateway's ``EVENT`` wire frames and of the
:class:`~repro.telemetry.runstore.RunStore` journal — and deserialise back
through :func:`event_from_dict`.  The dict carries ``schema``
(:data:`SCHEMA_VERSION`) so stored runs from older layouts are recognisable,
and ``event`` (the class name), which doubles as the broker **topic**.

Adding an event type: subclass, decorate with :func:`register_event`, keep
the ``t`` field last (it defaults to construction time).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, fields

__all__ = [
    "SCHEMA_VERSION",
    "TelemetryEvent",
    "event_from_dict",
    "event_topics",
    "register_event",
    # serving-layer events
    "RequestSubmitted",
    "RequestRejected",
    "BatchClosed",
    "BatchServed",
    "WorkerCrashed",
    "WorkerRespawned",
    "JobTimedOut",
    "CacheEvicted",
    # gateway events
    "ConnectionOpened",
    "ConnectionClosed",
    "ProtocolError",
    "ChunkStreamError",
    # sweep events
    "SweepStarted",
    "ScenarioCompleted",
    "SweepCompleted",
    # metrics / alerting events (the consumer tier)
    "MetricsWindowClosed",
    "AlertRaised",
    "AlertCleared",
    # span tracing / engine profiling
    "SpanClosed",
    "EngineProfile",
]

#: Version of the event payload layout; bumped when a field changes meaning
#: or disappears (adding fields with defaults is backward compatible).
SCHEMA_VERSION = 1

#: Registry of event classes by name — the decode side of the wire/store.
_EVENT_TYPES: dict[str, type] = {}


def register_event(cls: type) -> type:
    """Class decorator: make ``cls`` reconstructable by name."""
    _EVENT_TYPES[cls.__name__] = cls
    return cls


def event_topics() -> tuple[str, ...]:
    """Every registered event/topic name (sorted)."""
    return tuple(sorted(_EVENT_TYPES))


class TelemetryEvent:
    """Base of every telemetry event (mixin over frozen dataclasses)."""

    __slots__ = ()

    @property
    def topic(self) -> str:
        """Broker topic of this event — its class name."""
        return type(self).__name__

    def as_dict(self) -> dict:
        """JSON-able payload: ``event`` + ``schema`` + every field."""
        payload: dict = {"event": self.topic, "schema": SCHEMA_VERSION}
        for spec in fields(self):   # type: ignore[arg-type]
            value = getattr(self, spec.name)
            if isinstance(value, tuple):
                value = list(value)
            payload[spec.name] = value
        return payload


def event_from_dict(payload: dict) -> TelemetryEvent:
    """Rebuild a typed event from its :meth:`~TelemetryEvent.as_dict` form.

    Unknown fields are ignored (forward compatible); an unknown ``event``
    name raises ``KeyError`` naming it — callers that only want the dict can
    skip this and keep the payload as-is.
    """
    name = payload.get("event")
    cls = _EVENT_TYPES.get(name)
    if cls is None:
        raise KeyError(
            f"unknown telemetry event type {name!r} (known: "
            f"{', '.join(event_topics())})")
    kwargs = {}
    for spec in fields(cls):
        if spec.name not in payload:
            continue
        value = payload[spec.name]
        if isinstance(value, list):
            value = tuple(value)
        kwargs[spec.name] = value
    return cls(**kwargs)


def _now() -> float:
    return time.monotonic()


# --------------------------------------------------------------- serving layer
@register_event
@dataclass(frozen=True)
class RequestSubmitted(TelemetryEvent):
    """A request was admitted by :meth:`ModelServer.submit` (trace id born)."""

    key: str
    n_steps: int
    trace_id: int
    t: float = field(default_factory=_now)


@register_event
@dataclass(frozen=True)
class RequestRejected(TelemetryEvent):
    """A request was refused at submit time (before it could touch a batch)."""

    key: str
    reason: str
    t: float = field(default_factory=_now)


@register_event
@dataclass(frozen=True)
class BatchClosed(TelemetryEvent):
    """A coalescing group closed into a lock-step batch (full or deadline)."""

    key: str
    n_steps: int
    n_rows: int
    trace_ids: tuple = ()
    t: float = field(default_factory=_now)


@register_event
@dataclass(frozen=True)
class BatchServed(TelemetryEvent):
    """A batch finished executing; its futures are about to resolve."""

    key: str
    n_steps: int
    n_rows: int
    ok: bool
    duration_s: float
    trace_ids: tuple = ()
    t: float = field(default_factory=_now)


@register_event
@dataclass(frozen=True)
class WorkerCrashed(TelemetryEvent):
    """A shard worker died (or its pipe broke) while holding a job."""

    worker_index: int
    key: str = ""
    trace_ids: tuple = ()
    t: float = field(default_factory=_now)


@register_event
@dataclass(frozen=True)
class WorkerRespawned(TelemetryEvent):
    """A crashed/wedged shard worker was replaced with a fresh process."""

    worker_index: int
    t: float = field(default_factory=_now)


@register_event
@dataclass(frozen=True)
class JobTimedOut(TelemetryEvent):
    """A shard job missed ``ServePolicy.job_timeout`` (wedged worker)."""

    worker_index: int
    key: str = ""
    timeout_s: float = 0.0
    trace_ids: tuple = ()
    t: float = field(default_factory=_now)


@register_event
@dataclass(frozen=True)
class CacheEvicted(TelemetryEvent):
    """The dispatcher's byte-budget LRU evicted a warm model."""

    key: str
    nbytes: int
    t: float = field(default_factory=_now)


# -------------------------------------------------------------------- gateway
@register_event
@dataclass(frozen=True)
class ConnectionOpened(TelemetryEvent):
    """The gateway accepted a TCP connection (past admission control)."""

    peer: str
    t: float = field(default_factory=_now)


@register_event
@dataclass(frozen=True)
class ConnectionClosed(TelemetryEvent):
    """An accepted gateway connection ended (either side)."""

    peer: str
    n_requests: int = 0
    t: float = field(default_factory=_now)


@register_event
@dataclass(frozen=True)
class ProtocolError(TelemetryEvent):
    """A malformed frame (request- or connection-scoped) on a connection."""

    peer: str
    code: int
    request_id: int = 0
    t: float = field(default_factory=_now)


@register_event
@dataclass(frozen=True)
class ChunkStreamError(TelemetryEvent):
    """A chunked (streaming) request series failed reassembly.

    Distinct from :class:`ProtocolError` so dashboards can tell truncated /
    inconsistent streams apart from garbled single frames; mirrored by the
    ``n_chunk_stream_errors`` gateway counter.
    """

    peer: str
    request_id: int = 0
    detail: str = ""
    t: float = field(default_factory=_now)


# ---------------------------------------------------------------------- sweep
@register_event
@dataclass(frozen=True)
class SweepStarted(TelemetryEvent):
    """A scenario sweep began executing."""

    n_scenarios: int
    n_workers: int = 1
    t: float = field(default_factory=_now)


@register_event
@dataclass(frozen=True)
class ScenarioCompleted(TelemetryEvent):
    """One sweep scenario finished (``ok=False`` carries no traceback —
    the :class:`~repro.sweep.runner.ScenarioResult` does)."""

    name: str
    ok: bool
    wall_time_s: float
    t: float = field(default_factory=_now)


@register_event
@dataclass(frozen=True)
class SweepCompleted(TelemetryEvent):
    """A scenario sweep finished; counts mirror ``SweepResult``."""

    n_ok: int
    n_failed: int
    wall_time_s: float
    t: float = field(default_factory=_now)


# ------------------------------------------------- span tracing / profiling
@register_event
@dataclass(frozen=True)
class SpanClosed(TelemetryEvent):
    """One closed span of a request's trace (a stage of its lifecycle).

    Published by :class:`~repro.telemetry.spans.Tracer` when a sampled
    span closes.  ``name`` is the stage (``serve_queue``,
    ``worker_evaluate``, ...) — dot-free, so per-stage window metrics stay
    addressable by :class:`~repro.telemetry.alerts.AlertRule` dotted paths
    (``stages.worker_evaluate.p95_s``).  ``parent`` names the enclosing
    stage (``""`` marks the trace root); stage names are unique within a
    trace except across shard retries, where repeated attempt-stage spans
    become **siblings** under the same parent.  ``worker_index`` is the
    shard worker that executed a worker-side stage (``-1`` elsewhere);
    worker stages are stamped in the reply descriptor and materialised by
    the parent process, never published from the worker itself.
    """

    name: str
    trace_id: int
    t_start: float
    duration_s: float
    parent: str = ""
    worker_index: int = -1
    t: float = field(default_factory=_now)


@register_event
@dataclass(frozen=True)
class EngineProfile(TelemetryEvent):
    """Engine hot-path counters of one completed transient scenario.

    Emitted by :func:`~repro.sweep.runner.run_sweep` alongside
    ``ScenarioCompleted``, surfacing what the solver spent its time on:
    Newton iterations, LTE accept/reject traffic, and the
    :class:`~repro.circuit.linalg.FactorizationCache` hit/miss/invalidation
    balance (``cache_hit_rate`` = reuses / solves, 0.0 when the cache was
    disabled or never consulted).
    """

    name: str
    newton_iterations: int = 0
    accepted_steps: int = 0
    rejected_steps: int = 0
    lte_rejections: int = 0
    cache_factorizations: int = 0
    cache_reuses: int = 0
    cache_invalidations: int = 0
    cache_hit_rate: float = 0.0
    wall_time_s: float = 0.0
    t: float = field(default_factory=_now)


# --------------------------------------------------------- metrics / alerting
@register_event
@dataclass(frozen=True)
class MetricsWindowClosed(TelemetryEvent):
    """A :class:`~repro.telemetry.metrics.MetricsAggregator` window closed.

    Republished through the same broker the raw events came from, so any
    subscriber (in-process or over the gateway's ``EVENTS_SUBSCRIBE`` wire)
    receives pre-aggregated operational metrics without re-deriving them
    from the raw stream.  ``queue_latency`` / ``e2e_latency`` are
    :meth:`LatencySummary.as_dict <repro.serve.stats.LatencySummary.as_dict>`
    payloads; ``per_model`` maps model key → that model's window slice
    (rows, batches, throughput, fill ratio, latency summaries); ``stages``
    maps span stage name → that stage's window latency summary (fed by
    ``SpanClosed`` events, addressable by alert rules as
    ``stages.<stage>.p95_s``).
    """

    window_index: int
    t_start: float
    t_end: float
    n_submitted: int = 0
    n_served: int = 0
    n_failed: int = 0
    n_batches: int = 0
    throughput_rps: float = 0.0
    fill_ratio: float = 0.0
    queue_latency: dict = field(default_factory=dict)
    e2e_latency: dict = field(default_factory=dict)
    per_model: dict = field(default_factory=dict)
    stages: dict = field(default_factory=dict)
    n_rejected: int = 0
    n_crashes: int = 0
    n_respawns: int = 0
    n_timeouts: int = 0
    n_evictions: int = 0
    n_subscriber_dropped: int = 0
    n_late: int = 0
    n_unmatched: int = 0
    queue_depth: int = 0
    n_events: int = 0
    t: float = field(default_factory=_now)


@register_event
@dataclass(frozen=True)
class AlertRaised(TelemetryEvent):
    """An :class:`~repro.telemetry.alerts.AlertRule` breached its threshold
    for ``raise_after`` consecutive closed windows."""

    name: str
    metric: str
    value: float
    threshold: float
    window_index: int
    detail: str = ""
    t: float = field(default_factory=_now)


@register_event
@dataclass(frozen=True)
class AlertCleared(TelemetryEvent):
    """A raised alert recovered: its rule stayed within bounds for
    ``clear_after`` consecutive closed windows (hysteresis)."""

    name: str
    metric: str
    value: float
    threshold: float
    window_index: int
    detail: str = ""
    t: float = field(default_factory=_now)
