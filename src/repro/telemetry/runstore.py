"""Durable run/snapshot/event store on stdlib ``sqlite3``.

A **run** is one recorded serving (or sweep) session.  While it is open,
periodic :class:`~repro.serve.stats.ServeStats` snapshots and every broker
event are journaled; afterwards the run can be inspected — or **replayed**:
:meth:`RunStore.replay` turns the journaled ``RequestSubmitted`` events back
into the request schedule (model key, step count, relative submit time) so a
recorded load test can be re-driven against a live server as regression
traffic.

Design points:

* one SQLite file, WAL off, ``check_same_thread=False`` plus a process-side
  lock — writers are the recorder thread and (rarely) the caller, and the
  store's job is durability, not concurrency;
* events/snapshots store their payload as canonical JSON (sorted keys) so a
  run round-trips **bitwise** through a fresh process;
* timestamps are the publisher's ``time.monotonic()`` — meaningless across
  processes on their own, so each run also records ``t_opened`` (same clock)
  to difference against and ``wall_opened`` (``time.time()``) for humans;
* a corrupted or non-database file fails at :class:`RunStore` construction
  with the named :class:`~repro.exceptions.RunStoreError`, not at first use.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
from dataclasses import dataclass

from ..checks import lockwatch
from ..exceptions import RunStoreError
from .events import TelemetryEvent

__all__ = ["ReplayRequest", "RunRecord", "RunStore", "STORE_VERSION"]

#: On-disk schema version, tracked in sqlite's ``user_version`` pragma.
#: 0/1 are the pre-spans layouts (PR 7/9 — ``user_version`` was never set);
#: 2 added the ``spans`` table.  Older files migrate transparently (every
#: change so far is additive); files stamped **newer** than this build
#: refuse to open with a :class:`~repro.exceptions.RunStoreError` naming
#: both versions.
STORE_VERSION = 2

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    run_id      INTEGER PRIMARY KEY AUTOINCREMENT,
    name        TEXT NOT NULL,
    t_opened    REAL NOT NULL,
    wall_opened REAL NOT NULL,
    t_closed    REAL,
    meta        TEXT NOT NULL DEFAULT '{}'
);
CREATE TABLE IF NOT EXISTS events (
    event_id    INTEGER PRIMARY KEY AUTOINCREMENT,
    run_id      INTEGER NOT NULL REFERENCES runs(run_id),
    t           REAL NOT NULL,
    kind        TEXT NOT NULL,
    trace_id    INTEGER NOT NULL DEFAULT 0,
    payload     TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS snapshots (
    snapshot_id INTEGER PRIMARY KEY AUTOINCREMENT,
    run_id      INTEGER NOT NULL REFERENCES runs(run_id),
    t           REAL NOT NULL,
    stats       TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS spans (
    span_id      INTEGER PRIMARY KEY AUTOINCREMENT,
    run_id       INTEGER NOT NULL REFERENCES runs(run_id),
    trace_id     INTEGER NOT NULL DEFAULT 0,
    name         TEXT NOT NULL,
    parent       TEXT NOT NULL DEFAULT '',
    t_start      REAL NOT NULL,
    duration_s   REAL NOT NULL,
    worker_index INTEGER NOT NULL DEFAULT -1,
    payload      TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_events_run ON events(run_id, event_id);
CREATE INDEX IF NOT EXISTS idx_snapshots_run ON snapshots(run_id, snapshot_id);
CREATE INDEX IF NOT EXISTS idx_spans_run ON spans(run_id, trace_id, span_id);
"""


def _canonical(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class RunRecord:
    """One recorded run (header row; events/snapshots are queried separately)."""

    run_id: int
    name: str
    t_opened: float
    wall_opened: float
    t_closed: float | None
    meta: dict

    @property
    def closed(self) -> bool:
        return self.t_closed is not None

    @property
    def duration_s(self) -> float | None:
        if self.t_closed is None:
            return None
        return self.t_closed - self.t_opened


@dataclass(frozen=True)
class ReplayRequest:
    """One entry of a recorded request schedule, ready to re-drive.

    ``t_rel`` is seconds since the run opened (same monotonic clock as the
    original submit), so a replayer sleeps ``t_rel - elapsed`` between
    submissions to reproduce the recorded arrival pattern.
    """

    t_rel: float
    key: str
    n_steps: int
    trace_id: int


class RunStore:
    """SQLite-backed journal of runs, their stats snapshots and events."""

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = os.fspath(path)
        self._lock = lockwatch.monitored_lock("telemetry.runstore")
        try:
            self._db = sqlite3.connect(self.path, check_same_thread=False)
            # Exercise the file now: sqlite3.connect is lazy, so a garbage
            # file would otherwise only fail on first query deep in a caller.
            found = int(self._db.execute(
                "PRAGMA user_version").fetchone()[0])
            if found > STORE_VERSION:
                self._db.close()
                raise RunStoreError(
                    f"run store at {self.path!r} has schema version {found}, "
                    f"newer than this build's version {STORE_VERSION} — "
                    "refusing to open (open it with the build that wrote it)")
            # Older layouts (pre-spans: user_version 0/1) migrate
            # transparently: every schema change so far is additive, so
            # running the idempotent CREATE IF NOT EXISTS script *is* the
            # migration; the version stamp records that it happened.
            self._db.executescript(_SCHEMA)
            self._db.execute(f"PRAGMA user_version = {STORE_VERSION}")
            self._db.commit()
        except sqlite3.DatabaseError as exc:
            raise RunStoreError(
                f"cannot open run store at {self.path!r}: {exc}") from exc
        self._closed = False

    @property
    def schema_version(self) -> int:
        """The store's on-disk schema version (always current once open)."""
        return STORE_VERSION

    # ------------------------------------------------------------- lifecycle
    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._db.close()

    def __enter__(self) -> "RunStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _execute(self, sql: str, params: tuple = ()):
        if self._closed:
            raise RunStoreError(f"run store at {self.path!r} is closed")
        try:
            return self._db.execute(sql, params)
        except sqlite3.DatabaseError as exc:
            raise RunStoreError(
                f"run store at {self.path!r} failed: {exc}") from exc

    # ------------------------------------------------------------------ runs
    def open_run(self, name: str, meta: dict | None = None) -> int:
        """Start a run; returns its id (the handle every journal call takes)."""
        with self._lock:
            cursor = self._execute(
                "INSERT INTO runs (name, t_opened, wall_opened, meta) "
                "VALUES (?, ?, ?, ?)",
                (name, time.monotonic(),
                 time.time(),  # repro: allow[REP103] wall_opened is human-facing provenance, not a deadline
                 _canonical(meta or {})))
            self._db.commit()
            return int(cursor.lastrowid)

    def close_run(self, run_id: int, meta: dict | None = None) -> None:
        """Mark a run finished; ``meta`` (if given) is merged into its meta."""
        with self._lock:
            run = self._get_run_locked(run_id)
            merged = dict(run.meta)
            if meta:
                merged.update(meta)
            self._execute(
                "UPDATE runs SET t_closed = ?, meta = ? WHERE run_id = ?",
                (time.monotonic(), _canonical(merged), run_id))
            self._db.commit()

    def _get_run_locked(self, run_id: int) -> RunRecord:
        row = self._execute(
            "SELECT run_id, name, t_opened, wall_opened, t_closed, meta "
            "FROM runs WHERE run_id = ?", (run_id,)).fetchone()
        if row is None:
            raise RunStoreError(f"unknown run id {run_id}")
        return RunRecord(run_id=int(row[0]), name=row[1],
                         t_opened=float(row[2]), wall_opened=float(row[3]),
                         t_closed=None if row[4] is None else float(row[4]),
                         meta=json.loads(row[5]))

    def get_run(self, run_id: int) -> RunRecord:
        with self._lock:
            return self._get_run_locked(run_id)

    def runs(self) -> list[RunRecord]:
        """Every recorded run, oldest first."""
        with self._lock:
            rows = self._execute(
                "SELECT run_id FROM runs ORDER BY run_id").fetchall()
            return [self._get_run_locked(int(r[0])) for r in rows]

    # --------------------------------------------------------------- journal
    def record_event(self, run_id: int, event) -> None:
        """Journal one broker event (typed event or ``as_dict`` payload).

        ``SpanClosed`` payloads are routed to the dedicated ``spans``
        table; everything else lands in ``events``.
        """
        self.record_events(run_id, (event,))

    @staticmethod
    def _span_row(run_id: int, payload: dict) -> tuple:
        return (run_id, int(payload.get("trace_id", 0)),
                str(payload.get("name", "")),
                str(payload.get("parent", "")),
                float(payload.get("t_start", 0.0)),
                float(payload.get("duration_s", 0.0)),
                int(payload.get("worker_index", -1)),
                _canonical(payload))

    def record_events(self, run_id: int, events) -> int:
        """Journal a batch of events in one transaction; returns the count.

        ``SpanClosed`` payloads split off into the ``spans`` table (same
        transaction), so a recorded run keeps its trace spans queryable
        by ``(run_id, trace_id)`` instead of buried in the event journal.
        """
        rows, span_rows = [], []
        for event in events:
            payload = event.as_dict() if isinstance(event, TelemetryEvent) \
                else dict(event)
            if payload.get("event") == "SpanClosed":
                span_rows.append(self._span_row(run_id, payload))
                continue
            rows.append((run_id, float(payload.get("t", 0.0)),
                         str(payload.get("event", "")),
                         int(payload.get("trace_id", 0)),
                         _canonical(payload)))
        if not rows and not span_rows:
            return 0
        with self._lock:
            if self._closed:
                raise RunStoreError(f"run store at {self.path!r} is closed")
            try:
                if rows:
                    self._db.executemany(
                        "INSERT INTO events "
                        "(run_id, t, kind, trace_id, payload) "
                        "VALUES (?, ?, ?, ?, ?)", rows)
                if span_rows:
                    self._db.executemany(
                        "INSERT INTO spans (run_id, trace_id, name, parent, "
                        "t_start, duration_s, worker_index, payload) "
                        "VALUES (?, ?, ?, ?, ?, ?, ?, ?)", span_rows)
                self._db.commit()
            except sqlite3.DatabaseError as exc:
                raise RunStoreError(
                    f"run store at {self.path!r} failed: {exc}") from exc
        return len(rows) + len(span_rows)

    def record_snapshot(self, run_id: int, stats: dict,
                        t: float | None = None) -> None:
        """Journal one ``ServeStats.as_dict()``-shaped stats snapshot."""
        with self._lock:
            self._execute(
                "INSERT INTO snapshots (run_id, t, stats) VALUES (?, ?, ?)",
                (run_id, time.monotonic() if t is None else float(t),
                 _canonical(stats)))
            self._db.commit()

    # ----------------------------------------------------------------- reads
    def iter_events(self, run_id: int, kind: str | None = None,
                    chunk: int = 1024):
        """Journaled event payloads of a run in record order, **streamed**.

        Rows are paged out of sqlite ``chunk`` at a time by keyset
        pagination on ``event_id`` (the store's lock is held only while a
        page is fetched, never across a ``yield``), so iterating a
        multi-million-event run costs one page of memory, and a recorder
        appending concurrently never starves readers.
        """
        chunk = max(1, int(chunk))
        last_id = 0
        while True:
            sql = ("SELECT event_id, payload FROM events "
                   "WHERE run_id = ? AND event_id > ?")
            params: tuple = (run_id, last_id)
            if kind is not None:
                sql += " AND kind = ?"
                params += (kind,)
            sql += " ORDER BY event_id LIMIT ?"
            params += (chunk,)
            with self._lock:
                rows = self._execute(sql, params).fetchall()
            if not rows:
                return
            last_id = int(rows[-1][0])
            for _, payload in rows:
                yield json.loads(payload)

    def events(self, run_id: int, kind: str | None = None) -> list[dict]:
        """Journaled event payloads of a run in record order (materialised
        convenience over :meth:`iter_events`)."""
        return list(self.iter_events(run_id, kind=kind))

    def spans(self, run_id: int, trace_id: int | None = None) -> list[dict]:
        """Journaled ``SpanClosed`` payloads of a run, in record order.

        Optionally narrowed to one trace — the shape
        :class:`~repro.telemetry.spans.TraceAssembler` rebuilds trees from.
        """
        sql = "SELECT payload FROM spans WHERE run_id = ?"
        params: tuple = (run_id,)
        if trace_id is not None:
            sql += " AND trace_id = ?"
            params += (trace_id,)
        sql += " ORDER BY span_id"
        with self._lock:
            rows = self._execute(sql, params).fetchall()
        return [json.loads(r[0]) for r in rows]

    def snapshots(self, run_id: int) -> list[dict]:
        """Journaled stats snapshots of a run in record order."""
        with self._lock:
            rows = self._execute(
                "SELECT stats FROM snapshots WHERE run_id = ? "
                "ORDER BY snapshot_id", (run_id,)).fetchall()
        return [json.loads(r[0]) for r in rows]

    def replay(self, run_id: int, chunk: int = 1024):
        """The run's recorded request schedule, in submission order.

        Derived from the journaled ``RequestSubmitted`` events: each entry
        carries the model key, the request's step count and its submit time
        relative to the run opening — everything a driver needs to re-serve
        the same traffic against a live server.

        Returns a **lazy iterator** backed by :meth:`iter_events` keyset
        pagination — a journaled session streams out of sqlite one page at
        a time instead of materialising every row before the first entry is
        yielded.  The run id is validated eagerly (unknown ids raise
        :class:`~repro.exceptions.RunStoreError` here, not at first
        ``next``); callers that need the whole schedule at once wrap it in
        ``list``.
        """
        run = self.get_run(run_id)

        def _schedule():
            for payload in self.iter_events(run_id, kind="RequestSubmitted",
                                            chunk=chunk):
                yield ReplayRequest(
                    t_rel=max(0.0, float(payload["t"]) - run.t_opened),
                    key=str(payload["key"]),
                    n_steps=int(payload["n_steps"]),
                    trace_id=int(payload.get("trace_id", 0)))

        return _schedule()
