"""Hierarchical span tracing keyed to the serving stack's trace ids.

PR 9's windowed metrics answer *how slow* a request was; this module
answers *where the time went*.  A :class:`Tracer` hangs off the server's
:class:`~repro.telemetry.broker.TopicBroker` and records **spans** — named,
timed stages of one request's lifecycle, keyed by the trace id that already
rides submit → batch → shard → reply.  Closed spans publish as ordinary
:class:`~repro.telemetry.events.SpanClosed` events, so they reach every
existing consumer unchanged: the gateway's ``EVENTS_SUBSCRIBE`` wire, the
:class:`~repro.telemetry.metrics.MetricsAggregator` (per-stage ``stages``
window section), and the :class:`~repro.telemetry.runstore.RunStore`
journal (dedicated ``spans`` table).

Design points:

* **falsy off switch** — like the broker itself, ``bool(tracer)`` is False
  while the broker has no subscriber (or ``sample_rate`` is 0), so hot
  paths pay one truthiness check and nothing else;
* **head-based sampling** — the keep/drop decision is made once per trace
  id by a seeded hash (:meth:`Tracer.sampled`), deterministically, so a
  sampled-out trace produces **zero** spans across every layer and tests
  can pin the decision;
* **two recording forms** — ``with tracer.span(name, trace_id):`` for
  stages that wrap live code (REP107 enforces the ``with``), and
  :meth:`Tracer.emit` for stages whose boundaries were captured as plain
  timestamps (batcher queue times, worker reply-descriptor stamps) —
  shard workers never see the tracer (REP106); the parent materialises
  their spans from the stamped timings;
* **name-linked hierarchy** — a span names its ``parent`` stage instead of
  carrying a pointer, so spans can close in any order on any thread and
  :class:`TraceAssembler` still rebuilds the tree; retried shard attempts
  repeat a stage name and become siblings.

:func:`describe_trace` renders one assembled trace as a terminal
waterfall; :meth:`TraceAssembler.critical_path` walks the tree picking the
latest-ending child at every level — the chain a latency fix must shorten.
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass, field

from .broker import TopicBroker
from .events import SpanClosed

__all__ = [
    "ROOT_SPAN",
    "SpanBatch",
    "SpanNode",
    "Tracer",
    "TracerConfig",
    "TraceAssembler",
    "describe_trace",
    "subscribe_spans",
]

#: Stage name of every trace's root span (the end-to-end request).
ROOT_SPAN = "request"

#: Knuth multiplicative-hash constant for the sampling decision.
_HASH_MULT = 2654435761


@dataclass(frozen=True)
class TracerConfig:
    """Sampling policy of a :class:`Tracer`.

    ``sample_rate`` is the kept fraction of traces in [0, 1]; the per-trace
    decision is a pure function of ``(seed, trace_id)``, so two tracers
    with the same config agree on every trace and tests can choose seeds
    that keep (or drop) specific ids deterministically.
    """

    sample_rate: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.sample_rate <= 1.0:
            raise ValueError(
                f"sample_rate must be within [0, 1], got {self.sample_rate}")


class _NullSpan:
    """The no-op span handed out for unsampled traces (shared singleton)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _Span:
    """A live span: times ``__enter__`` → ``__exit__``, publishes on close."""

    __slots__ = ("_tracer", "name", "trace_id", "parent", "worker_index",
                 "t_start")

    def __init__(self, tracer: "Tracer", name: str, trace_id: int,
                 parent: str, worker_index: int) -> None:
        self._tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.parent = parent
        self.worker_index = worker_index
        self.t_start = 0.0

    def __enter__(self) -> "_Span":
        self.t_start = time.monotonic()
        return self

    def __exit__(self, *exc_info) -> None:
        self._tracer.emit(self.name, self.trace_id, self.t_start,
                          time.monotonic() - self.t_start,
                          parent=self.parent,
                          worker_index=self.worker_index,
                          sampled=True)


class Tracer:
    """Low-overhead span recorder over a :class:`TopicBroker`.

    Falsy while tracing cannot go anywhere (no broker subscriber) or is
    switched off (``sample_rate`` 0) — instrumentation sites guard with
    ``if tracer:`` exactly like event publication guards with
    ``if broker:``, so the untraced hot path pays one attribute check.
    """

    __slots__ = ("_broker", "config")

    def __init__(self, broker: TopicBroker,
                 config: TracerConfig | None = None) -> None:
        self._broker = broker
        self.config = config or TracerConfig()

    def __bool__(self) -> bool:
        return bool(self._broker) and self.config.sample_rate > 0.0

    def sampled(self, trace_id: int) -> bool:
        """The head-based keep/drop decision for one trace (deterministic)."""
        rate = self.config.sample_rate
        if rate >= 1.0:
            return True
        if rate <= 0.0:
            return False
        mixed = (int(trace_id) * _HASH_MULT + self.config.seed) & 0xFFFFFFFF
        mixed ^= mixed >> 16
        mixed = (mixed * 0x45D9F3B) & 0xFFFFFFFF
        mixed ^= mixed >> 16
        return mixed < rate * 4294967296.0

    def span(self, name: str, trace_id: int, parent: str = ROOT_SPAN,
             worker_index: int = -1):
        """A context manager timing one stage of ``trace_id``.

        Must be used as ``with tracer.span(...):`` — REP107 flags orphan
        calls.  Returns a shared no-op for unsampled traces, so the drop
        path allocates nothing.
        """
        if not (self and self.sampled(trace_id)):
            return _NULL_SPAN
        return _Span(self, name, trace_id, parent, worker_index)

    def emit(self, name: str, trace_id: int, t_start: float,
             duration_s: float, parent: str = ROOT_SPAN,
             worker_index: int = -1, sampled: bool | None = None) -> None:
        """Materialise a span whose boundaries were captured elsewhere.

        This is how timestamp-derived stages (batcher queue times) and
        worker-stamped stages (reply-descriptor timings) enter the trace
        without the recording site holding an open context manager — and
        without shard workers ever touching the tracer.
        """
        if sampled is None:
            if not (self and self.sampled(trace_id)):
                return
        elif not sampled:
            return
        self._broker.publish(SpanClosed(
            name=name, trace_id=int(trace_id), t_start=float(t_start),
            duration_s=max(0.0, float(duration_s)), parent=parent,
            worker_index=int(worker_index)))

    def batch(self) -> "SpanBatch":
        """A collector that publishes many spans in one broker hop.

        The resolve path closes several spans per request; emitting them
        one at a time pays a subscriber-queue lock hop each.  A batch
        gathers them and hands the lot to
        :meth:`~repro.telemetry.broker.TopicBroker.publish_many` on
        :meth:`SpanBatch.flush`.
        """
        return SpanBatch(self)


class SpanBatch:
    """Accumulates materialised spans for one bulk publish.

    Callers are responsible for the sampling decision (everything added is
    published verbatim) — the pattern is one :meth:`Tracer.sampled` check
    per trace, then :meth:`add` for each of its spans, then one
    :meth:`flush` after the loop, **outside any lock** (REP107 applies to
    span traffic exactly as to single emits).
    """

    __slots__ = ("_tracer", "_events")

    def __init__(self, tracer: Tracer) -> None:
        self._tracer = tracer
        self._events: list[SpanClosed] = []

    def __len__(self) -> int:
        return len(self._events)

    def add(self, name: str, trace_id: int, t_start: float,
            duration_s: float, parent: str = ROOT_SPAN,
            worker_index: int = -1) -> None:
        self._events.append(SpanClosed(
            name=name, trace_id=int(trace_id), t_start=float(t_start),
            duration_s=max(0.0, float(duration_s)), parent=parent,
            worker_index=int(worker_index)))

    def flush(self) -> None:
        if self._events:
            self._tracer._broker.publish_many(self._events)
            self._events = []


# --------------------------------------------------------------- assembly

@dataclass
class SpanNode:
    """One span inside an assembled trace tree."""

    name: str
    trace_id: int
    t_start: float
    duration_s: float
    parent: str = ""
    worker_index: int = -1
    children: list = field(default_factory=list)

    @property
    def t_end(self) -> float:
        return self.t_start + self.duration_s

    def walk(self):
        """This node, then every descendant (pre-order)."""
        yield self
        for child in self.children:
            yield from child.walk()


def _as_span_fields(item) -> dict:
    """Normalise a SpanClosed event / payload dict to constructor kwargs."""
    if isinstance(item, SpanClosed):
        payload = item.as_dict()
    else:
        payload = item
    return {
        "name": str(payload["name"]),
        "trace_id": int(payload.get("trace_id", 0)),
        "t_start": float(payload.get("t_start", 0.0)),
        "duration_s": float(payload.get("duration_s", 0.0)),
        "parent": str(payload.get("parent", "")),
        "worker_index": int(payload.get("worker_index", -1)),
    }


class TraceAssembler:
    """Rebuild per-trace span trees from a ``SpanClosed`` stream.

    Feed it events (typed or ``as_dict`` payloads) in any order;
    :meth:`tree` links children to parents **by stage name** within one
    trace.  When a parent stage appears more than once (retried shard
    attempts), a child attaches to the instance whose time window contains
    its start, falling back to the last-started instance — so retry spans
    land under the attempt that produced them and nothing is orphaned.
    """

    def __init__(self) -> None:
        self._spans: dict[int, list[SpanNode]] = {}

    def add(self, item) -> None:
        """Ingest one span (ignores any non-``SpanClosed`` payload)."""
        if isinstance(item, dict) and item.get("event") != "SpanClosed":
            return
        if not isinstance(item, (dict, SpanClosed)):
            return
        node = SpanNode(**_as_span_fields(item))
        self._spans.setdefault(node.trace_id, []).append(node)

    def extend(self, items) -> None:
        for item in items:
            self.add(item)

    def trace_ids(self) -> tuple[int, ...]:
        return tuple(sorted(self._spans))

    def spans(self, trace_id: int) -> list[SpanNode]:
        """Every recorded span of a trace, in start order (flat)."""
        return sorted(self._spans.get(trace_id, ()),
                      key=lambda node: node.t_start)

    def tree(self, trace_id: int) -> SpanNode | None:
        """The trace's span tree rooted at :data:`ROOT_SPAN` (or None).

        Built fresh on every call from the flat span list, so late spans
        (a gateway write landing after the root closed) slot in on the
        next call.  A span naming an absent parent attaches to the root —
        a visible mis-parenting beats a silently dropped span.
        """
        recorded = self.spans(trace_id)
        if not recorded:
            return None
        nodes = [SpanNode(name=s.name, trace_id=s.trace_id,
                          t_start=s.t_start, duration_s=s.duration_s,
                          parent=s.parent, worker_index=s.worker_index)
                 for s in recorded]
        by_name: dict[str, list[SpanNode]] = {}
        for node in nodes:
            by_name.setdefault(node.name, []).append(node)
        roots = by_name.get(ROOT_SPAN)
        root = roots[0] if roots else None
        orphans = []
        for node in nodes:
            if node is root:
                continue
            candidates = by_name.get(node.parent)
            if candidates is None or node in candidates:
                orphans.append(node)
                continue
            chosen = None
            for candidate in candidates:
                if candidate.t_start <= node.t_start <= candidate.t_end:
                    chosen = candidate
                    break
            if chosen is None:
                started_before = [c for c in candidates
                                  if c.t_start <= node.t_start]
                chosen = max(started_before, key=lambda c: c.t_start) \
                    if started_before else candidates[0]
            chosen.children.append(node)
        if root is None:
            # Rootless trace (root span lost): synthesise one covering the
            # recorded extent so the tree is still renderable.
            root = SpanNode(name=ROOT_SPAN, trace_id=trace_id,
                            t_start=nodes[0].t_start,
                            duration_s=max(n.t_end for n in nodes)
                            - nodes[0].t_start)
        for node in orphans:
            root.children.append(node)
        for node in nodes:
            node.children.sort(key=lambda child: child.t_start)
        root.children.sort(key=lambda child: child.t_start)
        return root

    def complete(self, trace_id: int) -> bool:
        """True when the trace recorded its own root span."""
        return any(node.name == ROOT_SPAN
                   for node in self._spans.get(trace_id, ()))

    def critical_path(self, trace_id: int) -> list[SpanNode]:
        """Root-to-leaf chain through the latest-ending child per level.

        The stage sequence whose durations bound the trace's end-to-end
        latency: shortening any other branch cannot move the finish line.
        """
        root = self.tree(trace_id)
        if root is None:
            return []
        path = [root]
        node = root
        while node.children:
            node = max(node.children, key=lambda child: child.t_end)
            path.append(node)
        return path

    def stage_totals(self, trace_id: int) -> dict[str, float]:
        """Summed duration per stage name (retry attempts accumulate)."""
        totals: dict[str, float] = {}
        for node in self._spans.get(trace_id, ()):
            totals[node.name] = totals.get(node.name, 0.0) + node.duration_s
        return totals


def _format_duration(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3f} s "
    if seconds >= 1e-3:
        return f"{seconds * 1e3:8.3f} ms"
    return f"{seconds * 1e6:8.1f} µs"


def describe_trace(assembler: TraceAssembler, trace_id: int,
                   width: int = 48) -> str:
    """Render one trace as an indented terminal waterfall.

    One line per span, indented by tree depth, with a bar positioned on
    the root's timeline — stages on the critical path are marked ``*``::

        trace 7 — 11 spans, e2e 12.431 ms
        request                 12.431 ms |################################| *
          serve_queue            1.204 ms |###.............................|
          serve_execute         10.807 ms |...###########################..| *
            worker_evaluate      9.112 ms |....######################......| *
    """
    root = assembler.tree(trace_id)
    if root is None:
        return f"trace {trace_id} — no spans recorded"
    span = max(root.duration_s, 1e-12)
    # Walk the critical path on THIS tree: critical_path() would rebuild a
    # fresh one whose node identities never match the nodes rendered here.
    critical = set()
    node = root
    while True:
        critical.add(id(node))
        if not node.children:
            break
        node = max(node.children, key=lambda child: child.t_end)
    n_spans = len(assembler.spans(trace_id))
    lines = [f"trace {trace_id} — {n_spans} spans, "
             f"e2e {root.duration_s * 1e3:.3f} ms"]

    def _render(node: SpanNode, depth: int) -> None:
        lo = (node.t_start - root.t_start) / span
        hi = (node.t_end - root.t_start) / span
        left = min(width, max(0, int(round(lo * width))))
        right = min(width, max(left + 1, int(round(hi * width))))
        bar = "." * left + "#" * (right - left) + "." * (width - right)
        label = "  " * depth + node.name
        worker = f" w{node.worker_index}" if node.worker_index >= 0 else ""
        mark = " *" if id(node) in critical else ""
        lines.append(f"{label:<26} {_format_duration(node.duration_s)} "
                     f"|{bar}|{worker}{mark}")
        for child in node.children:
            _render(child, depth + 1)

    _render(root, 0)
    return "\n".join(lines)


@contextlib.contextmanager
def subscribe_spans(broker: TopicBroker, maxsize: int = 65536):
    """Context manager: a :class:`TraceAssembler` fed from ``broker``.

    Convenience for tests and tools: subscribes to the ``SpanClosed``
    topic and yields ``(assembler, subscription)``; callers drain the
    subscription into the assembler whenever they want a current view,
    and exit drains whatever is still queued.
    """
    assembler = TraceAssembler()
    with broker.subscribe(topics=("SpanClosed",), maxsize=maxsize) as sub:
        try:
            yield assembler, sub
        finally:
            assembler.extend(sub.drain())
