"""Resistively loaded common-source MOS amplifier (single transistor)."""

from __future__ import annotations

from ..circuit import Circuit, MOSFETParams, Waveform
from ..circuit.waveforms import DC

__all__ = ["build_common_source_amplifier"]


def build_common_source_amplifier(supply: float = 1.2,
                                  load_resistance: float = 5e3,
                                  load_capacitance: float = 20e-15,
                                  width: float = 4e-6,
                                  length: float = 0.13e-6,
                                  input_waveform: Waveform | float = 0.55,
                                  name: str = "common_source") -> Circuit:
    """Single NMOS common-source stage with resistive load.

    The gate is driven directly by the input source (flagged as the TFT
    input); the output is the drain node.  The square-law device gives a
    smoothly varying transconductance, so the TFT hyperplane shows a clear
    gain variation along the state axis without any convergence difficulty —
    a good mid-complexity example between the RC ladder and the full buffer.
    """
    circuit = Circuit(name)
    wave = input_waveform if isinstance(input_waveform, Waveform) else DC(float(input_waveform))
    circuit.voltage_source("VDD", "vdd", "0", supply)
    circuit.voltage_source("Vin", "gate", "0", wave, is_input=True)
    params = MOSFETParams(width=width, length=length)
    circuit.nmos("M1", "drain", "gate", "0", "0", params=params)
    circuit.resistor("RD", "vdd", "drain", load_resistance)
    circuit.capacitor("CL", "drain", "0", load_capacitance)
    circuit.add_output("vout", "drain")
    return circuit
