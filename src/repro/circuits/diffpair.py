"""Differential-pair building blocks shared by the amplifier examples.

The high-speed output buffer of the paper is "a chain of 4 differential
amplifiers"; this module provides the reusable single stage (NMOS input pair,
resistive loads, NMOS tail current source biased from a current mirror) and a
stand-alone single-stage amplifier circuit for tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..circuit import Circuit, MOSFETParams, Waveform
from ..circuit.waveforms import DC

__all__ = ["DiffPairParams", "add_differential_stage", "build_differential_amplifier"]


@dataclass
class DiffPairParams:
    """Electrical parameters of one differential amplifier stage.

    The defaults are tuned for a 1.2 V supply in a generic 0.13 um process and
    give a stage gain of roughly 1.2 with a multi-GHz corner — four cascaded
    stages then provide the paper's overall DC gain of about 2 with a ~3 GHz
    bandwidth.
    """

    load_resistance: float = 248.0
    tail_current_width: float = 24e-6
    input_width: float = 16e-6
    length: float = 0.13e-6
    load_capacitance: float = 30e-15
    supply: float = 1.2

    def input_params(self) -> MOSFETParams:
        return MOSFETParams(width=self.input_width, length=self.length)

    def tail_params(self) -> MOSFETParams:
        return MOSFETParams(width=self.tail_current_width, length=self.length)


def add_differential_stage(circuit: Circuit, stage_index: int,
                           in_pos: str, in_neg: str,
                           params: DiffPairParams,
                           bias_node: str, supply_node: str = "vdd") -> tuple[str, str]:
    """Add one differential stage; returns the (out_pos, out_neg) node names.

    The stage consists of five transistors' worth of circuitry: the NMOS input
    pair, the NMOS tail current source (gate driven from ``bias_node``), two
    load resistors and two load capacitors modelling wiring/junction loading.
    Note the output polarity: ``out_pos`` is the drain of the *negative* input
    device so that the stage is non-inverting from ``in_pos`` to ``out_pos``.
    """
    s = stage_index
    tail = f"tail{s}"
    out_pos = f"outp{s}"
    out_neg = f"outn{s}"
    circuit.nmos(f"M{s}a", out_neg, in_pos, tail, "0", params=params.input_params())
    circuit.nmos(f"M{s}b", out_pos, in_neg, tail, "0", params=params.input_params())
    circuit.nmos(f"M{s}t", tail, bias_node, "0", "0", params=params.tail_params())
    circuit.resistor(f"RL{s}a", supply_node, out_neg, params.load_resistance)
    circuit.resistor(f"RL{s}b", supply_node, out_pos, params.load_resistance)
    circuit.capacitor(f"CL{s}a", out_neg, "0", params.load_capacitance)
    circuit.capacitor(f"CL{s}b", out_pos, "0", params.load_capacitance)
    return out_pos, out_neg


def build_differential_amplifier(params: DiffPairParams | None = None,
                                 input_waveform: Waveform | float = 0.9,
                                 reference_voltage: float = 0.9,
                                 bias_voltage: float = 0.55,
                                 name: str = "diff_amplifier") -> Circuit:
    """Single differential stage driven single-ended (for tests and examples)."""
    params = params or DiffPairParams()
    circuit = Circuit(name)
    wave = input_waveform if isinstance(input_waveform, Waveform) else DC(float(input_waveform))
    circuit.voltage_source("VDD", "vdd", "0", params.supply)
    circuit.voltage_source("Vin", "inp", "0", wave, is_input=True)
    circuit.voltage_source("Vref", "inn", "0", reference_voltage)
    circuit.voltage_source("Vbias", "bias", "0", bias_voltage)
    out_pos, out_neg = add_differential_stage(circuit, 1, "inp", "inn", params, "bias")
    circuit.add_output("vout", out_pos, out_neg)
    return circuit
