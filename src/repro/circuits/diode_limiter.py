"""Diode limiter/rectifier — a strongly nonlinear two-diode test circuit.

The circuit clips the output between roughly +/- one diode drop, so both the
instantaneous gain and the dynamics are strongly state dependent: an ideal
stress test for the static-path reconstruction (integration of ``H(x, 0)``).
"""

from __future__ import annotations

from ..circuit import Circuit, Waveform
from ..circuit.waveforms import DC

__all__ = ["build_diode_limiter"]


def build_diode_limiter(series_resistance: float = 1e3,
                        load_resistance: float = 10e3,
                        load_capacitance: float = 5e-12,
                        clip_bias: float = 0.2,
                        input_waveform: Waveform | float = 0.0,
                        name: str = "diode_limiter") -> Circuit:
    """Series-R diode clipper with a capacitive load.

    Two anti-parallel diodes (each in series with a small bias offset created
    by a resistive divider from the supply) clamp the output node.  The input
    source is flagged as the TFT input.
    """
    circuit = Circuit(name)
    wave = input_waveform if isinstance(input_waveform, Waveform) else DC(float(input_waveform))
    circuit.voltage_source("Vin", "in", "0", wave, is_input=True)
    circuit.voltage_source("Vbias_p", "clip_p", "0", clip_bias)
    circuit.voltage_source("Vbias_n", "clip_n", "0", -clip_bias)
    circuit.resistor("Rs", "in", "out", series_resistance)
    circuit.diode("D1", "out", "clip_p", junction_capacitance=0.5e-12, transit_time=5e-10)
    circuit.diode("D2", "clip_n", "out", junction_capacitance=0.5e-12, transit_time=5e-10)
    circuit.resistor("RL", "out", "0", load_resistance)
    circuit.capacitor("CL", "out", "0", load_capacitance)
    circuit.add_output("vout", "out")
    return circuit
