"""The high-speed output buffer used in the paper's evaluation (Section IV).

The original circuit is a post-amplifier for an optical transimpedance
amplifier: a chain of four differential amplifiers in UMC 0.13 um CMOS with
27 transistors and about 70 linear and nonlinear components, a DC gain of 2
and a 3 GHz bandwidth; it saturates strongly for large input amplitudes.

The reproduction below keeps that architecture — four resistively loaded NMOS
differential pairs biased from a shared current mirror, followed by a
source-follower output stage, with explicit inter-stage wiring parasitics —
but uses the square-law device model of :mod:`repro.circuit.devices.mosfet`
instead of the proprietary foundry model.  With the default parameters the
circuit realises a small-signal DC gain of ~2 and a -3 dB bandwidth of a few
GHz, and it clips for inputs more than a couple of hundred millivolt away
from the 0.9 V reference, reproducing the qualitative behaviour the paper
exploits (the state axis of its Fig. 6 spans 0.4 V to 1.4 V).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..circuit import Circuit, MOSFETParams, Waveform
from ..circuit.waveforms import DC, BitPattern, Sine, prbs_bits
from .diffpair import DiffPairParams

__all__ = [
    "BufferParams",
    "build_output_buffer",
    "buffer_training_waveform",
    "buffer_test_pattern",
]


@dataclass
class BufferParams:
    """Design parameters of the four-stage output buffer."""

    n_stages: int = 4
    supply: float = 1.2
    reference_voltage: float = 0.9
    stage: DiffPairParams = field(default_factory=DiffPairParams)
    #: Number of parallel fingers per input/tail device (layout realism; also
    #: brings the transistor count in line with the paper's 27).
    fingers: int = 2
    #: Inter-stage wiring parasitics.
    wiring_resistance: float = 15.0
    wiring_capacitance: float = 4e-15
    #: Source-follower output stage.
    follower_width: float = 24e-6
    follower_tail_width: float = 16e-6
    output_load_resistance: float = 400.0
    output_load_capacitance: float = 40e-15
    #: Bias generation (current-mirror reference).
    bias_resistance: float = 1.1e3
    bias_width: float = 24e-6
    length: float = 0.13e-6


def _finger_params(total_width: float, fingers: int, length: float) -> MOSFETParams:
    return MOSFETParams(width=total_width / fingers, length=length)


def build_output_buffer(params: BufferParams | None = None,
                        input_waveform: Waveform | float | None = None,
                        name: str = "output_buffer") -> Circuit:
    """Build the four-stage high-speed output buffer.

    Parameters
    ----------
    params:
        :class:`BufferParams`; the defaults reproduce the paper's operating
        point (DC gain ~2, bandwidth ~3 GHz, strong saturation beyond a few
        hundred mV of differential input).
    input_waveform:
        Stimulus of the single-ended input; defaults to the DC reference level
        so the circuit starts from its quiescent point.

    The circuit input is the voltage source ``Vin`` (flagged as the TFT
    input); the output ``vout`` is the differential output of the source
    followers.
    """
    p = params or BufferParams()
    circuit = Circuit(name)
    wave = (input_waveform if isinstance(input_waveform, Waveform)
            else DC(float(input_waveform if input_waveform is not None
                          else p.reference_voltage)))

    # Supplies, signal source and the reference for the unused input.
    circuit.voltage_source("VDD", "vdd", "0", p.supply)
    circuit.voltage_source("Vin", "inp", "0", wave, is_input=True)
    circuit.voltage_source("Vref", "inn", "0", p.reference_voltage)

    # Bias generator: resistor-loaded diode-connected device whose gate
    # voltage drives every tail current source (simple current mirror).
    circuit.resistor("Rbias", "vdd", "bias", p.bias_resistance)
    circuit.nmos("Mbias", "bias", "bias", "0", "0",
                 params=MOSFETParams(width=p.bias_width, length=p.length))

    in_pos, in_neg = "inp", "inn"
    stage_params = p.stage
    for stage in range(1, p.n_stages + 1):
        tail = f"tail{stage}"
        out_pos = f"s{stage}p"
        out_neg = f"s{stage}n"
        inp_params = _finger_params(stage_params.input_width, p.fingers, p.length)
        tail_params = _finger_params(stage_params.tail_current_width, p.fingers, p.length)
        for finger in range(1, p.fingers + 1):
            # Non-inverting path: the drain of the device driven by in_neg is
            # the positive output.
            circuit.nmos(f"M{stage}a{finger}", out_neg, in_pos, tail, "0", params=inp_params)
            circuit.nmos(f"M{stage}b{finger}", out_pos, in_neg, tail, "0", params=inp_params)
            circuit.nmos(f"M{stage}t{finger}", tail, "bias", "0", "0", params=tail_params)
        circuit.resistor(f"RL{stage}a", "vdd", out_neg, stage_params.load_resistance)
        circuit.resistor(f"RL{stage}b", "vdd", out_pos, stage_params.load_resistance)
        circuit.capacitor(f"CL{stage}a", out_neg, "0", stage_params.load_capacitance)
        circuit.capacitor(f"CL{stage}b", out_pos, "0", stage_params.load_capacitance)

        if stage < p.n_stages:
            # Wiring parasitics between consecutive stages.
            next_pos = f"w{stage}p"
            next_neg = f"w{stage}n"
            circuit.resistor(f"RW{stage}a", out_pos, next_pos, p.wiring_resistance)
            circuit.resistor(f"RW{stage}b", out_neg, next_neg, p.wiring_resistance)
            circuit.capacitor(f"CW{stage}a", next_pos, "0", p.wiring_capacitance)
            circuit.capacitor(f"CW{stage}b", next_neg, "0", p.wiring_capacitance)
            in_pos, in_neg = next_pos, next_neg

    # Source-follower output stage driving the off-chip load.
    last_pos, last_neg = f"s{p.n_stages}p", f"s{p.n_stages}n"
    follower_params = MOSFETParams(width=p.follower_width, length=p.length)
    follower_tail = MOSFETParams(width=p.follower_tail_width, length=p.length)
    circuit.nmos("Mfa", "vdd", last_pos, "foutp", "0", params=follower_params)
    circuit.nmos("Mfb", "vdd", last_neg, "foutn", "0", params=follower_params)
    circuit.nmos("Mfta", "foutp", "bias", "0", "0", params=follower_tail)
    circuit.nmos("Mftb", "foutn", "bias", "0", "0", params=follower_tail)
    circuit.resistor("Routa", "foutp", "0", p.output_load_resistance)
    circuit.resistor("Routb", "foutn", "0", p.output_load_resistance)
    circuit.capacitor("Couta", "foutp", "0", p.output_load_capacitance)
    circuit.capacitor("Coutb", "foutn", "0", p.output_load_capacitance)

    circuit.add_output("vout", "foutp", "foutn")
    return circuit


def buffer_training_waveform(params: BufferParams | None = None,
                             amplitude: float = 0.5,
                             frequency: float = 2e6) -> Sine:
    """The paper's training stimulus: a low-frequency, high-amplitude sine.

    The default 2 MHz is three orders of magnitude below the buffer bandwidth,
    so the trajectory sweeps the state space quasi-statically (the Jacobian
    snapshots then depend on the instantaneous input only, which is what the
    one-dimensional state estimator x = u(t) assumes); the 0.5 V amplitude
    around the 0.9 V reference covers the 0.4 V - 1.4 V state range of the
    paper's Fig. 6 and drives the buffer deep into saturation on both sides.
    """
    p = params or BufferParams()
    return Sine(offset=p.reference_voltage, amplitude=amplitude, frequency=frequency)


def buffer_test_pattern(params: BufferParams | None = None,
                        n_bits: int = 32, bit_rate: float = 2.5e9,
                        amplitude: float = 0.4, seed: int = 0b1010101) -> BitPattern:
    """The paper's validation stimulus: a spectrally rich 2.5 GS/s bit pattern."""
    p = params or BufferParams()
    return BitPattern(
        bits=prbs_bits(n_bits, seed=seed),
        bit_rate=bit_rate,
        low=p.reference_voltage - amplitude,
        high=p.reference_voltage + amplitude,
    )
