"""Linear RC ladder — the simplest test vehicle for the extraction flow.

Because the circuit is linear, its TFT hyperplane is *flat* along the state
axis and the extracted Hammerstein model must degenerate to an ordinary
linear transfer function.  Several unit tests rely on this property.
"""

from __future__ import annotations

from ..circuit import Circuit, Waveform
from ..circuit.waveforms import DC

__all__ = ["build_rc_ladder"]


def build_rc_ladder(n_sections: int = 3, resistance: float = 1e3,
                    capacitance: float = 1e-12,
                    input_waveform: Waveform | float = 0.5,
                    name: str = "rc_ladder") -> Circuit:
    """Build an ``n_sections``-stage RC low-pass ladder driven by one input.

    Parameters
    ----------
    n_sections:
        Number of RC sections (>= 1).
    resistance / capacitance:
        Per-section values; the defaults give a first corner around 160 MHz.
    input_waveform:
        Waveform (or DC level) of the input voltage source, which is marked as
        the circuit input for the TFT extraction.
    """
    if n_sections < 1:
        raise ValueError("need at least one RC section")
    circuit = Circuit(name)
    wave = input_waveform if isinstance(input_waveform, Waveform) else DC(float(input_waveform))
    circuit.voltage_source("Vin", "n0", "0", wave, is_input=True)
    for section in range(1, n_sections + 1):
        circuit.resistor(f"R{section}", f"n{section - 1}", f"n{section}", resistance)
        circuit.capacitor(f"C{section}", f"n{section}", "0", capacitance)
    circuit.add_output("vout", f"n{n_sections}")
    return circuit
