"""Ready-made example circuits used by the examples, tests and benchmarks."""

from .buffer import BufferParams, build_output_buffer, buffer_training_waveform, buffer_test_pattern
from .common_source import build_common_source_amplifier
from .diffpair import DiffPairParams, add_differential_stage, build_differential_amplifier
from .diode_limiter import build_diode_limiter
from .rc_ladder import build_rc_ladder

__all__ = [
    "build_rc_ladder",
    "build_diode_limiter",
    "build_common_source_amplifier",
    "DiffPairParams",
    "add_differential_stage",
    "build_differential_amplifier",
    "BufferParams",
    "build_output_buffer",
    "buffer_training_waveform",
    "buffer_test_pattern",
]
