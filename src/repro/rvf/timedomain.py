"""Time-domain simulation of extracted Hammerstein models.

The extracted model is a set of decoupled, first-order (complex) linear
filters driven by static nonlinear functions of the input.  Because the
filters are linear with *fixed* poles, each time step can use the exact
exponential update for a piecewise-linear (first-order-hold) input:

.. math::

    y_{n+1} = e^{a\\Delta} y_n + v_n\\,\\Delta\\,\\varphi_1(a\\Delta)
              + (v_{n+1}-v_n)\\,\\Delta\\,\\varphi_2(a\\Delta)

with :math:`\\varphi_1(z) = (e^z-1)/z` and
:math:`\\varphi_2(z) = (e^z-1-z)/z^2`.  This update is A-stable and exact for
piecewise-linear branch inputs, so the extracted model can be evaluated with
much larger steps than the transistor-level circuit — which is where the
paper's reported speed-up comes from.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass

import numpy as np

from ..exceptions import ModelError

__all__ = ["ModelSimulationResult", "simulate_hammerstein", "phi1", "phi2"]


@dataclass
class ModelSimulationResult:
    """Output of a Hammerstein-model transient."""

    times: np.ndarray
    inputs: np.ndarray
    outputs: np.ndarray
    static_part: np.ndarray
    branch_outputs: np.ndarray     # (n_branches, K) real contributions
    wall_time: float

    @property
    def n_points(self) -> int:
        return int(self.times.size)


def phi1(z: np.ndarray | complex) -> np.ndarray | complex:
    """(exp(z) - 1) / z with a series fallback near z = 0.

    Public because the compiled runtime (:mod:`repro.runtime`) folds the same
    exponential-integrator weights into its recurrence matrices; the two
    evaluation paths must agree to machine precision.
    """
    z = np.asarray(z, dtype=complex)
    small = np.abs(z) < 1e-6
    safe = np.where(small, 1.0, z)
    result = np.where(small, 1.0 + z / 2.0 + z * z / 6.0, (np.exp(safe) - 1.0) / safe)
    return result if result.ndim else complex(result)


def phi2(z: np.ndarray | complex) -> np.ndarray | complex:
    """(exp(z) - 1 - z) / z**2 with a series fallback near z = 0."""
    z = np.asarray(z, dtype=complex)
    small = np.abs(z) < 1e-4
    safe = np.where(small, 1.0, z)
    result = np.where(small, 0.5 + z / 6.0 + z * z / 24.0,
                      (np.exp(safe) - 1.0 - safe) / (safe * safe))
    return result if result.ndim else complex(result)


#: Backwards-compatible aliases (the weights predate the public names).
_phi1 = phi1
_phi2 = phi2


def simulate_hammerstein(model, times: np.ndarray, inputs: np.ndarray) -> ModelSimulationResult:
    """Simulate an extracted model on a sampled input waveform.

    Parameters
    ----------
    model:
        :class:`repro.rvf.hammerstein.HammersteinModel`.
    times:
        Monotonically increasing sample times, shape ``(K,)``.
    inputs:
        Input samples ``u(t_k)``, shape ``(K,)`` — or a callable evaluated on
        ``times``.
    """
    wall_start = _time.perf_counter()
    times = np.asarray(times, dtype=float).ravel()
    if callable(inputs):
        inputs = np.array([inputs(t) for t in times], dtype=float)
    inputs = np.asarray(inputs, dtype=float).ravel()
    if inputs.size != times.size:
        raise ModelError("times and inputs must have the same length")
    if times.size < 2:
        raise ModelError("need at least two time points")
    if np.any(np.diff(times) <= 0):
        raise ModelError("times must be strictly increasing")

    # State-estimator trajectory and static path, evaluated vectorised.
    states = model.state_estimator.embed(times, inputs)
    static_part = model.static_output(states)

    n_points = times.size
    branch_outputs = np.zeros((model.n_branches, n_points))
    dt = np.diff(times)
    uniform = bool(np.allclose(dt, dt[0], rtol=1e-9, atol=0.0))

    from .hammerstein import _evaluate_state_function

    for b_idx, branch in enumerate(model.branches):
        v = _evaluate_state_function(branch.static_function, states)
        pole = branch.pole
        # Equilibrium initial condition: 0 = a*y + v(0).
        y = -v[0] / pole
        outputs_c = np.empty(n_points, dtype=complex)
        outputs_c[0] = y
        if uniform:
            z = pole * dt[0]
            expz = np.exp(z)
            w0 = dt[0] * _phi1(z)
            w1 = dt[0] * _phi2(z)
            for n in range(n_points - 1):
                y = expz * y + v[n] * w0 + (v[n + 1] - v[n]) * w1
                outputs_c[n + 1] = y
        else:
            for n in range(n_points - 1):
                z = pole * dt[n]
                y = np.exp(z) * y + v[n] * dt[n] * _phi1(z) \
                    + (v[n + 1] - v[n]) * dt[n] * _phi2(z)
                outputs_c[n + 1] = y
        if branch.is_complex_pair:
            branch_outputs[b_idx] = 2.0 * outputs_c.real
        else:
            branch_outputs[b_idx] = outputs_c.real

    outputs = static_part + branch_outputs.sum(axis=0)
    return ModelSimulationResult(
        times=times,
        inputs=inputs,
        outputs=outputs,
        static_part=static_part,
        branch_outputs=branch_outputs,
        wall_time=_time.perf_counter() - wall_start,
    )
