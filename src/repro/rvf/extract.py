"""End-to-end RVF model extraction (the paper's Algorithm 1).

Given a TFT dataset this module

1. splits the response into a static part (the instantaneous gain ``H(x, 0)``)
   and a dynamic part ``H(x, s) - H(x, 0)``,
2. identifies a common set of frequency poles ``{a_p}`` over all sampled
   states with relaxed vector fitting, increasing the order by two until the
   error bound ``epsilon`` is met,
3. recursively fits the state-dependent residue trajectories ``r_p(x)`` (and
   the instantaneous gain) with a second, common set of state poles
   ``{b_q}``, again increasing the order until the bound is met,
4. integrates the fitted residue functions analytically over the input and
   fixes the integration constants from the circuit's DC solution,
5. assembles the resulting parallel Hammerstein model.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field

import numpy as np

from ..exceptions import FittingError, ModelError
from ..tft.hyperplane import TFTDataset
from ..tft.state_estimator import StateEstimator
from ..vectfit import VectorFitOptions, fit_auto_order
from ..vectfit.orders import AutoFitReport
from ..vectfit.poles import initial_complex_poles, split_real_complex
from .hammerstein import HammersteinBranch, HammersteinModel, ModelMetadata
from .recursive import StateFitOptions, StateFitReport, fit_residue_trajectories

__all__ = ["RVFOptions", "RVFExtractionResult", "extract_rvf_model"]


@dataclass
class RVFOptions:
    """Configuration of the RVF extraction (the paper's epsilon and orders)."""

    error_bound: float = 1e-3
    #: Frequency-pole search (Algorithm 1 lines 14-17).
    start_frequency_order: int = 2
    frequency_order_step: int = 2
    max_frequency_poles: int = 24
    #: State-pole search (Algorithm 1 lines 18-25).
    state_fit: StateFitOptions = field(default_factory=StateFitOptions)
    #: Model the dynamic part H - H(0) with a separately integrated static
    #: path (the paper's flow).  When False the full response is fitted by the
    #: Hammerstein branches alone.
    split_static: bool = True
    #: Frequency-axis weighting ("uniform" emphasises the passband shape,
    #: "inverse_sqrt" balances the fit across the rolloff).
    frequency_weighting: str = "uniform"
    output_index: int = 0
    input_index: int = 0

    def __post_init__(self) -> None:
        if self.error_bound <= 0:
            raise FittingError("error_bound must be positive")
        # Keep the state fit bound consistent with the global bound by default.
        if self.state_fit.error_bound != self.error_bound:
            self.state_fit = StateFitOptions(**{**self.state_fit.__dict__,
                                                "error_bound": self.error_bound})


@dataclass
class RVFExtractionResult:
    """Extracted model plus all the diagnostics needed for the paper's figures."""

    model: HammersteinModel
    frequency_report: AutoFitReport
    state_report: StateFitReport
    tft: TFTDataset
    build_time: float

    @property
    def n_frequency_poles(self) -> int:
        return self.frequency_report.order

    @property
    def n_state_poles(self) -> int:
        return self.state_report.order

    def model_surface(self) -> np.ndarray:
        """Model TFT surface on the training grid (for Fig. 7-style plots)."""
        return self.model.transfer_function(self.tft.states, self.tft.frequencies)

    def summary(self) -> str:
        return (f"RVF model: {self.n_frequency_poles} frequency poles, "
                f"{self.n_state_poles} state poles per residue, "
                f"frequency fit error {self.frequency_report.result.relative_error:.2e}, "
                f"state fit error {min(self.state_report.errors):.2e}, "
                f"build time {self.build_time:.2f} s")


def extract_rvf_model(tft: TFTDataset, options: RVFOptions | None = None,
                      state_estimator: StateEstimator | None = None) -> RVFExtractionResult:
    """Run the complete time-domain RVF algorithm on a TFT dataset."""
    opts = options or RVFOptions()
    start_time = _time.perf_counter()

    if state_estimator is None:
        state_estimator = StateEstimator()
    if tft.state_dimension != 1:
        raise ModelError(
            "extract_rvf_model currently supports one-dimensional state estimators "
            "(x = u(t)), which is the configuration demonstrated in the paper; "
            "use repro.rvf.recursive.fit_recursive_expansion for gridded "
            "multi-dimensional data")

    response = tft.siso_response(opts.output_index, opts.input_index)       # (K, L)
    dc_gain = tft.siso_dc(opts.output_index, opts.input_index)              # (K,)
    states = tft.state_axis(0)                                              # (K,)
    frequencies = tft.frequencies
    svals = 2j * np.pi * frequencies

    if np.max(np.abs(dc_gain.imag)) > 1e-6 * max(np.max(np.abs(dc_gain)), 1e-30):
        raise ModelError("H(x, 0) has a significant imaginary part; the MNA data "
                         "is inconsistent (G(k) should be real)")
    dc_gain = dc_gain.real

    # ------------------------------------------------------------------ DC point
    if tft.times is not None:
        k_dc = int(np.argmin(tft.times))
    else:
        k_dc = 0
    dc_input = float(states[k_dc])
    if tft.outputs is not None:
        dc_output = float(tft.outputs[k_dc, opts.output_index])
    else:
        dc_output = 0.0

    # --------------------------------------------------- 1. frequency-pole stage
    if opts.split_static:
        dynamic_data = response - dc_gain[:, None]
    else:
        dynamic_data = response

    f_positive = frequencies[frequencies > 0]
    if f_positive.size < 2:
        raise FittingError("the frequency grid needs at least two positive frequencies")
    f_min, f_max = float(f_positive.min()), float(f_positive.max())

    vf_options = VectorFitOptions(
        real_coefficients=True,
        relaxed=True,
        fit_constant=True,
        fit_proportional=False,
        enforce_stability=True,
        weighting=opts.frequency_weighting,
    )
    frequency_report = fit_auto_order(
        svals, dynamic_data, opts.error_bound,
        start_order=opts.start_frequency_order,
        max_order=opts.max_frequency_poles,
        order_step=opts.frequency_order_step,
        options=vf_options,
        initial_pole_factory=lambda order: initial_complex_poles(f_min, f_max, order),
    )
    vf_result = frequency_report.result
    poles = vf_result.poles
    residues = vf_result.residues                    # (K, P)
    direct = vf_result.constants.real               # (K,) state-dependent feed-through

    # ------------------------------------------------ 2. state-axis (RVF) stage
    real_idx, pair_idx = split_real_complex(poles)
    representative = list(real_idx) + list(pair_idx)

    gain_samples = (dc_gain if opts.split_static else np.zeros_like(dc_gain)) + direct
    stacked = [gain_samples.astype(complex)]
    for p in representative:
        stacked.append(residues[:, p])
    samples = np.array(stacked)

    functions, state_report = fit_residue_trajectories(
        states, samples, opts.state_fit, variable="u")

    gain_function = functions[0]
    residue_functions = functions[1:]

    # --------------------------------------------- 3. Hammerstein model assembly
    branches: list[HammersteinBranch] = []
    for func, p in zip(residue_functions, representative):
        pole = poles[p]
        static = func.antiderivative().with_value_at(dc_input, 0.0)
        branches.append(HammersteinBranch(
            pole=pole,
            residue_function=func,
            static_function=static,
            is_complex_pair=bool(pole.imag != 0.0),
        ))

    static_function = gain_function.antiderivative().with_value_at(dc_input, dc_output)

    metadata = ModelMetadata(
        n_frequency_poles=poles.size,
        n_state_poles=state_report.order,
        frequency_fit_error=vf_result.relative_error,
        state_fit_error=float(min(state_report.errors)),
        error_bound=opts.error_bound,
        training_snapshots=tft.n_states,
        split_static=opts.split_static,
    )

    model = HammersteinModel(
        branches=branches,
        gain_function=gain_function,
        static_function=static_function,
        state_estimator=state_estimator,
        dc_input=dc_input,
        dc_output=dc_output,
        input_name=tft.input_names[opts.input_index] if tft.input_names else "u",
        output_name=tft.output_names[opts.output_index] if tft.output_names else "y",
        metadata=metadata,
    )

    build_time = _time.perf_counter() - start_time
    metadata.build_time_seconds = build_time

    # Record the hyperplane reproduction error on the training data.
    surface = model.transfer_function(tft.states, frequencies)
    deviation = surface - response
    scale = float(np.sqrt(np.mean(np.abs(response) ** 2))) or 1.0
    metadata.hyperplane_rmse_db = float(
        20.0 * np.log10(max(np.sqrt(np.mean(np.abs(deviation) ** 2)) / scale, 1e-300)))

    return RVFExtractionResult(
        model=model,
        frequency_report=frequency_report,
        state_report=state_report,
        tft=tft,
        build_time=build_time,
    )
