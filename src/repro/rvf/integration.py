"""Closed-form antiderivatives of the RVF basis functions.

The key property the paper exploits (its eqs. (18)-(19)) is that the partial
fraction basis used for the residue functions has a *known, compact
indefinite integral*:

.. math:: \\int \\frac{du}{j u - b} = -j\\,\\log(j u - b) + C

so the static nonlinear blocks of the Hammerstein model can be written down
analytically instead of requiring symbolic or numerical integration (the
CAFFEINE drawback).  To avoid the branch cut of the complex logarithm when
the integration path crosses ``Im(b)``, the primitive is implemented in the
explicitly smooth real/imaginary form

.. math::

    \\int \\frac{du}{j u - b}
      = -\\arctan\\!\\frac{u - \\operatorname{Im} b}{\\operatorname{Re} b}
        \\;-\\; \\tfrac{j}{2} \\ln\\!\\big((u - \\operatorname{Im} b)^2
        + (\\operatorname{Re} b)^2\\big)

which is valid (and infinitely differentiable in ``u``) for any pole with a
non-zero real part, regardless of its sign.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ModelError

__all__ = ["basis_primitive", "basis_primitive_derivative"]

#: Poles closer to the imaginary axis than this are rejected: the basis
#: function 1/(j*x - b) would develop a near-singularity inside the state
#: range and its primitive would become extremely stiff.
MIN_POLE_REAL_PART = 1e-12


def basis_primitive(u: np.ndarray | float, pole: complex) -> np.ndarray | complex:
    """Antiderivative of ``1/(j*u - pole)`` with respect to ``u``.

    The result is smooth in ``u`` for any ``pole`` with ``Re(pole) != 0`` and
    satisfies ``d/du basis_primitive(u, b) == 1/(j*u - b)`` exactly.
    """
    sigma = float(np.real(pole))
    tau = float(np.imag(pole))
    if abs(sigma) < MIN_POLE_REAL_PART:
        raise ModelError(
            f"state pole {pole} lies (numerically) on the imaginary axis; its basis "
            "function is singular for real states and cannot be integrated")
    w = np.asarray(u, dtype=float) - tau
    value = -np.arctan(w / sigma) - 0.5j * np.log(w * w + sigma * sigma)
    if np.isscalar(u):
        return complex(value)
    return value


def basis_primitive_derivative(u: np.ndarray | float, pole: complex) -> np.ndarray | complex:
    """The basis function itself, ``1/(j*u - pole)`` (used in tests)."""
    value = 1.0 / (1j * np.asarray(u, dtype=float) - pole)
    if np.isscalar(u):
        return complex(value)
    return value
