"""Analytical residue functions produced by the recursive vector fitting step.

Two value types live here:

* :class:`PartialFractionFunction` — a complex-valued function of one real
  state variable, written as a constant plus a partial fraction expansion
  ``sum_q c_q / (j x - b_q)``.  This is the form the RVF step produces for
  every frequency-pole residue trajectory ``r_p(x)`` (and for the
  instantaneous gain ``H(x, 0)``).
* :class:`IntegratedPartialFraction` — its exact antiderivative with respect
  to the state variable, which becomes the static nonlinear block
  ``f_p(x) = f_{p,0} + \\int r_p(x) du`` of the Hammerstein model.

Both evaluate vectorised over NumPy arrays and can print themselves as
human-readable analytical expressions for the model export.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import ModelError
from .integration import basis_primitive

__all__ = ["PartialFractionFunction", "IntegratedPartialFraction"]


@dataclass
class PartialFractionFunction:
    """``f(x) = constant + sum_q coefficients[q] / (j*x - poles[q])``.

    ``variable`` is only used for pretty-printing (e.g. ``"u"`` or ``"x2"``).
    """

    poles: np.ndarray
    coefficients: np.ndarray
    constant: complex = 0.0
    variable: str = "u"

    def __post_init__(self) -> None:
        self.poles = np.atleast_1d(np.asarray(self.poles, dtype=complex))
        self.coefficients = np.atleast_1d(np.asarray(self.coefficients, dtype=complex))
        if self.poles.shape != self.coefficients.shape:
            raise ModelError("poles and coefficients must have matching shapes")
        self.constant = complex(self.constant)

    # ---------------------------------------------------------------- algebra
    @property
    def order(self) -> int:
        return int(self.poles.size)

    def __call__(self, x: np.ndarray | float) -> np.ndarray | complex:
        x_arr = np.asarray(x, dtype=float)
        value = np.full(x_arr.shape, self.constant, dtype=complex)
        for pole, coeff in zip(self.poles, self.coefficients):
            value = value + coeff / (1j * x_arr - pole)
        if np.isscalar(x):
            return complex(value)
        return value

    def conjugate(self) -> "PartialFractionFunction":
        """Function whose values are the complex conjugate for real ``x``.

        ``conj(1/(jx - b)) = -1/(jx + conj(b))``, so the conjugate function is
        again a partial fraction with poles ``-conj(b_q)``.
        """
        return PartialFractionFunction(
            poles=-np.conj(self.poles),
            coefficients=-np.conj(self.coefficients),
            constant=np.conj(self.constant),
            variable=self.variable,
        )

    def scaled(self, factor: complex) -> "PartialFractionFunction":
        return PartialFractionFunction(self.poles.copy(), factor * self.coefficients,
                                       factor * self.constant, self.variable)

    def is_effectively_real(self, states: np.ndarray, tolerance: float = 1e-6) -> bool:
        """Whether the function is (numerically) real-valued on ``states``."""
        values = self(np.asarray(states, dtype=float))
        scale = float(np.max(np.abs(values))) or 1.0
        return float(np.max(np.abs(values.imag))) <= tolerance * scale

    # ------------------------------------------------------------ integration
    def antiderivative(self) -> "IntegratedPartialFraction":
        """Exact antiderivative with respect to the state variable."""
        return IntegratedPartialFraction(
            poles=self.poles.copy(),
            coefficients=self.coefficients.copy(),
            linear_coefficient=self.constant,
            offset=0.0,
            variable=self.variable,
        )

    # ----------------------------------------------------------- serialization
    def to_dict(self) -> dict:
        """JSON-able description (used by the runtime model registry)."""
        return {
            "type": "partial_fraction",
            "poles": _complex_to_pairs(self.poles),
            "coefficients": _complex_to_pairs(self.coefficients),
            "constant": [self.constant.real, self.constant.imag],
            "variable": self.variable,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PartialFractionFunction":
        if data.get("type") != "partial_fraction":
            raise ModelError(f"not a partial-fraction description: {data.get('type')!r}")
        return cls(
            poles=_pairs_to_complex(data["poles"]),
            coefficients=_pairs_to_complex(data["coefficients"]),
            constant=complex(*data["constant"]),
            variable=data.get("variable", "u"),
        )

    # --------------------------------------------------------------- printing
    def to_expression(self, precision: int = 6) -> str:
        """Human-readable analytical expression, e.g. for the model export."""
        parts = [_format_complex(self.constant, precision)]
        for pole, coeff in zip(self.poles, self.coefficients):
            parts.append(
                f"{_format_complex(coeff, precision)}/(j*{self.variable} "
                f"- ({_format_complex(pole, precision)}))")
        return " + ".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"PartialFractionFunction(order={self.order}, variable={self.variable!r})"


@dataclass
class IntegratedPartialFraction:
    """Antiderivative of a :class:`PartialFractionFunction`.

    ``F(u) = offset + linear_coefficient*u + sum_q coefficients[q]*P(u; poles[q])``
    where ``P`` is the smooth primitive of ``1/(j*u - b)`` implemented in
    :func:`repro.rvf.integration.basis_primitive`.
    """

    poles: np.ndarray
    coefficients: np.ndarray
    linear_coefficient: complex = 0.0
    offset: complex = 0.0
    variable: str = "u"

    def __post_init__(self) -> None:
        self.poles = np.atleast_1d(np.asarray(self.poles, dtype=complex))
        self.coefficients = np.atleast_1d(np.asarray(self.coefficients, dtype=complex))
        if self.poles.shape != self.coefficients.shape:
            raise ModelError("poles and coefficients must have matching shapes")
        self.linear_coefficient = complex(self.linear_coefficient)
        self.offset = complex(self.offset)

    def __call__(self, u: np.ndarray | float) -> np.ndarray | complex:
        u_arr = np.asarray(u, dtype=float)
        value = np.full(u_arr.shape, self.offset, dtype=complex)
        value = value + self.linear_coefficient * u_arr
        for pole, coeff in zip(self.poles, self.coefficients):
            value = value + coeff * basis_primitive(u_arr, pole)
        if np.isscalar(u):
            return complex(value)
        return value

    def derivative(self) -> PartialFractionFunction:
        """Recover the integrand (used to verify the calculus in tests)."""
        return PartialFractionFunction(self.poles.copy(), self.coefficients.copy(),
                                       self.linear_coefficient, self.variable)

    def with_value_at(self, u0: float, value: complex) -> "IntegratedPartialFraction":
        """Copy whose integration constant is fixed so that ``F(u0) == value``.

        This implements the paper's "the remaining constant after indefinite
        integration can be found using the DC solution of the circuit".
        """
        current = self(float(u0))
        return IntegratedPartialFraction(
            poles=self.poles.copy(),
            coefficients=self.coefficients.copy(),
            linear_coefficient=self.linear_coefficient,
            offset=self.offset + (value - current),
            variable=self.variable,
        )

    # ----------------------------------------------------------- serialization
    def to_dict(self) -> dict:
        """JSON-able description (used by the runtime model registry)."""
        return {
            "type": "integrated_partial_fraction",
            "poles": _complex_to_pairs(self.poles),
            "coefficients": _complex_to_pairs(self.coefficients),
            "linear_coefficient": [self.linear_coefficient.real,
                                   self.linear_coefficient.imag],
            "offset": [self.offset.real, self.offset.imag],
            "variable": self.variable,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "IntegratedPartialFraction":
        if data.get("type") != "integrated_partial_fraction":
            raise ModelError(f"not an integrated-partial-fraction description: "
                             f"{data.get('type')!r}")
        return cls(
            poles=_pairs_to_complex(data["poles"]),
            coefficients=_pairs_to_complex(data["coefficients"]),
            linear_coefficient=complex(*data["linear_coefficient"]),
            offset=complex(*data["offset"]),
            variable=data.get("variable", "u"),
        )

    def to_expression(self, precision: int = 6) -> str:
        """Analytical expression using atan/log (for the model export)."""
        u = self.variable
        parts = [_format_complex(self.offset, precision),
                 f"{_format_complex(self.linear_coefficient, precision)}*{u}"]
        for pole, coeff in zip(self.poles, self.coefficients):
            sigma = _format_real(pole.real, precision)
            tau = _format_real(pole.imag, precision)
            parts.append(
                f"{_format_complex(coeff, precision)}*(-atan(({u} - {tau})/{sigma}) "
                f"- 0.5j*log(({u} - {tau})**2 + {sigma}**2))")
        return " + ".join(parts)


def _complex_to_pairs(values: np.ndarray) -> list[list[float]]:
    return [[float(v.real), float(v.imag)] for v in np.atleast_1d(values)]


def _pairs_to_complex(pairs: list[list[float]]) -> np.ndarray:
    return np.array([complex(re, im) for re, im in pairs], dtype=complex)


def _format_real(value: float, precision: int) -> str:
    return f"{value:.{precision}g}"


def _format_complex(value: complex, precision: int) -> str:
    value = complex(value)
    if value.imag == 0.0:
        return f"{value.real:.{precision}g}"
    sign = "+" if value.imag >= 0 else "-"
    return f"({value.real:.{precision}g}{sign}{abs(value.imag):.{precision}g}j)"
