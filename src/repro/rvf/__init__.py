"""Recursive Vector Fitting and Hammerstein model synthesis (core contribution)."""

from .export import model_equations, to_python_callable, to_verilog_a
from .extract import RVFExtractionResult, RVFOptions, extract_rvf_model
from .hammerstein import HammersteinBranch, HammersteinModel, ModelMetadata
from .integration import basis_primitive
from .recursive import (
    NestedPartialFraction,
    StateFitOptions,
    StateFitReport,
    fit_recursive_expansion,
    fit_residue_trajectories,
)
from .residues import IntegratedPartialFraction, PartialFractionFunction
from .timedomain import ModelSimulationResult, simulate_hammerstein

__all__ = [
    "extract_rvf_model",
    "RVFOptions",
    "RVFExtractionResult",
    "HammersteinModel",
    "HammersteinBranch",
    "ModelMetadata",
    "PartialFractionFunction",
    "IntegratedPartialFraction",
    "NestedPartialFraction",
    "StateFitOptions",
    "StateFitReport",
    "fit_residue_trajectories",
    "fit_recursive_expansion",
    "basis_primitive",
    "simulate_hammerstein",
    "ModelSimulationResult",
    "model_equations",
    "to_verilog_a",
    "to_python_callable",
]
