"""Recursive Vector Fitting of state-dependent residue trajectories.

After the frequency poles ``{a_p}`` have been fixed, every frequency-pole
residue becomes a trajectory ``r_p(x^(k))`` over the sampled states.  This
module fits those trajectories — all of them sharing a *common* set of state
poles ``{b_q}`` — as partial fraction expansions in the state variable(s),
which is the "recursive" application of vector fitting that gives the paper
its name (Section III.B, eq. (16)).

Two cases are covered:

* **one-dimensional state estimators** (``x = u(t)``, the paper's example):
  a single complex-coefficient vector fit along ``j*x``;
* **multi-dimensional gridded state estimators**: the expansion is built one
  dimension at a time, outermost dimension first; the residues of each level
  are themselves fitted along the next dimension (paper eq. (16)), ending
  with partial fractions in the input ``u`` that can be integrated
  analytically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import FittingError, ModelError
from ..vectfit import VectorFitOptions, vector_fit
from ..vectfit.poles import initial_state_poles
from .residues import IntegratedPartialFraction, PartialFractionFunction

__all__ = [
    "StateFitOptions",
    "StateFitReport",
    "fit_residue_trajectories",
    "fit_recursive_expansion",
    "NestedPartialFraction",
]


@dataclass
class StateFitOptions:
    """Options of the state-axis (recursive) fitting stage."""

    error_bound: float = 1e-3
    start_order: int = 2
    order_step: int = 2
    max_order: int = 20
    n_iterations: int = 20
    weighting: str = "uniform"
    #: Minimum |Re(b)| of a state pole, relative to the state-axis span, so
    #: that the analytic antiderivative stays well conditioned.
    min_pole_real_fraction: float = 1e-3
    #: Stop increasing the order once an extra pair of poles improves the error
    #: by less than this factor — trajectory data has a noise floor (hysteresis
    #: of the training trajectory) below which extra poles only overfit.
    stagnation_factor: float = 0.85

    def vector_fit_options(self) -> VectorFitOptions:
        # The state-axis pole search runs in real-coefficient mode on the real
        # state variable: poles are found as complex conjugate pairs about the
        # state axis, which is exactly the "zero-phase" pole pairing of the
        # paper's reference [10] once mapped to the j*x convention.
        return VectorFitOptions(
            n_iterations=self.n_iterations,
            real_coefficients=True,
            relaxed=True,
            fit_constant=True,
            fit_proportional=False,
            enforce_stability=False,
            weighting=self.weighting,
        )


@dataclass
class StateFitReport:
    """Diagnostics of one state-axis fit."""

    poles: np.ndarray
    orders_tried: list[int]
    errors: list[float]
    error_bound: float
    converged: bool

    @property
    def order(self) -> int:
        return int(self.poles.size)


def _off_axis_poles(poles_x: np.ndarray, span: float, min_fraction: float) -> np.ndarray:
    """Push x-domain state poles away from the real axis.

    The basis ``1/(x - a)`` is singular when ``a`` is real and inside the
    sampled interval, and its antiderivative (equivalently, the ``j*x``
    convention primitive) requires a non-zero imaginary part.  Poles closer to
    the real axis than ``min_fraction * span`` are nudged away; the residues
    are recomputed afterwards by the caller.
    """
    poles = np.array(poles_x, dtype=complex, copy=True)
    min_imag = max(min_fraction * span, 1e-30)
    small = np.abs(poles.imag) < min_imag
    if np.any(small):
        signs = np.where(poles.imag[small] >= 0.0, 1.0, -1.0)
        poles[small] = poles[small].real + 1j * signs * min_imag
    return poles


def fit_residue_trajectories(states: np.ndarray, samples: np.ndarray,
                             options: StateFitOptions | None = None,
                             variable: str = "u"
                             ) -> tuple[list[PartialFractionFunction], StateFitReport]:
    """Fit several functions of one real state variable with common poles.

    Parameters
    ----------
    states:
        State samples ``x^(k)``, shape ``(K,)``.
    samples:
        Function samples, shape ``(F, K)`` — one row per residue trajectory
        (plus rows for the instantaneous gain or the direct term if desired).
    options:
        :class:`StateFitOptions`; the order is increased by ``order_step``
        until the relative error drops below ``error_bound``.
    variable:
        Name used when printing the resulting analytical expressions.

    Returns
    -------
    (functions, report):
        One :class:`PartialFractionFunction` per row of ``samples`` (all
        sharing the same poles), plus fit diagnostics.
    """
    opts = options or StateFitOptions()
    states = np.asarray(states, dtype=float).ravel()
    samples = np.atleast_2d(np.asarray(samples, dtype=complex))
    if samples.shape[1] != states.size:
        raise FittingError(
            f"samples have {samples.shape[1]} columns but {states.size} states given")
    if states.size < 4:
        raise FittingError("need at least four state samples to fit residue trajectories")

    span = float(states.max() - states.min()) or 1.0
    x_lo, x_hi = float(states.min()), float(states.max())
    vf_opts = opts.vector_fit_options()

    # The pole search runs in real-coefficient mode on the real state variable.
    # Complex trajectories (residues of complex frequency-pole pairs) are
    # split into real and imaginary rows; per-row normalisation keeps small
    # trajectories from being drowned out by large ones in the common-pole fit.
    scales = np.sqrt(np.mean(np.abs(samples) ** 2, axis=1))
    scales = np.where(scales > 0.0, scales, 1.0)
    normalised = samples / scales[:, None]
    fit_rows = np.vstack([normalised.real, normalised.imag]).astype(complex)
    svals_x = states.astype(complex)

    orders_tried: list[int] = []
    errors: list[float] = []
    pole_sets: list[np.ndarray] = []

    max_supported = max(1, states.size // 2 - 1)
    effective_max = min(opts.max_order, max_supported)
    order = min(max(opts.start_order, 1), effective_max)
    while True:
        initial = initial_state_poles(x_lo, x_hi, order)
        result = vector_fit(svals_x, fit_rows, initial, vf_opts)
        orders_tried.append(order)
        errors.append(result.relative_error)
        pole_sets.append(result.poles)
        if result.relative_error <= opts.error_bound or order >= effective_max:
            break
        # Stagnation guard: trajectory data carries a hysteresis noise floor;
        # once extra poles stop paying for themselves they only overfit.
        if len(errors) >= 2 and errors[-1] > opts.stagnation_factor * min(errors[:-1]):
            break
        order = min(order + opts.order_step, effective_max)

    # Prefer the smallest order whose error is within 5% of the best achieved.
    best_error = min(errors)
    tolerance = max(opts.error_bound, 1.05 * best_error)
    chosen = next(i for i, err in enumerate(errors) if err <= tolerance)
    poles_x = _off_axis_poles(pole_sets[chosen], span, opts.min_pole_real_fraction)

    # Final residue identification: one complex least-squares solve with the
    # fixed pole set, directly on the (unsplit) complex trajectories.
    basis = 1.0 / (states[None, :] - poles_x[:, None])          # (Q, K)
    lhs = np.vstack([basis, np.ones((1, states.size))]).T        # (K, Q+1)
    solution, *_ = np.linalg.lstsq(lhs, (normalised).T, rcond=None)
    coefficients_x = (solution[:-1].T) * scales[:, None]
    constants = solution[-1] * scales

    # Convert the x-domain expansion  c/(x - a)  to the paper's j*x convention
    # 1/(j*x - b) with b = j*a and coefficient j*c; conjugate pole pairs in x
    # become the +/- real-part ("zero phase") pairs of the paper.
    poles_jx = 1j * poles_x
    coefficients_jx = 1j * coefficients_x

    functions = [
        PartialFractionFunction(poles=poles_jx, coefficients=coefficients_jx[i],
                                constant=constants[i], variable=variable)
        for i in range(samples.shape[0])
    ]
    report = StateFitReport(
        poles=poles_jx,
        orders_tried=orders_tried,
        errors=errors,
        error_bound=opts.error_bound,
        converged=bool(min(errors) <= opts.error_bound),
    )
    return functions, report


# --------------------------------------------------------------------------- #
# multi-dimensional (gridded) recursion
# --------------------------------------------------------------------------- #

@dataclass
class NestedPartialFraction:
    """Recursive partial fraction expansion over a multi-dimensional state.

    At this level the expansion reads (paper eq. (16))

    .. math::
        f(x) = g_0(x_{rest}) + \\sum_q \\frac{g_q(x_{rest})}{j x_d - b_q}

    where ``x_d`` is the coordinate handled at this level
    (``dimension_index``) and the ``g_q`` are either nested expansions over
    the remaining coordinates or, at the innermost level, plain
    :class:`PartialFractionFunction` objects in the input ``u``.
    """

    poles: np.ndarray
    children: list
    constant_child: object
    dimension_index: int
    variable: str = "x"

    def __post_init__(self) -> None:
        self.poles = np.atleast_1d(np.asarray(self.poles, dtype=complex))
        if len(self.children) != self.poles.size:
            raise ModelError("need exactly one child expansion per pole")

    def __call__(self, x: np.ndarray) -> complex | np.ndarray:
        """Evaluate at one state vector ``x`` (1-D array) or a batch ``(K, q)``."""
        x = np.asarray(x, dtype=float)
        if x.ndim == 1:
            return self._evaluate_single(x)
        return np.array([self._evaluate_single(row) for row in x])

    def _evaluate_single(self, x: np.ndarray) -> complex:
        value = (complex(_call_child(self.constant_child, x))
                 if self.constant_child is not None else 0.0)
        coordinate = x[self.dimension_index]
        for pole, child in zip(self.poles, self.children):
            value += complex(_call_child(child, x)) / (1j * coordinate - pole)
        return value

    def antiderivative(self) -> "NestedPartialFraction":
        """Antiderivative with respect to the innermost variable (the input)."""
        integrated_children = [child.antiderivative() for child in self.children]
        integrated_constant = (self.constant_child.antiderivative()
                               if self.constant_child is not None else None)
        return NestedPartialFraction(self.poles.copy(), integrated_children,
                                     integrated_constant, self.dimension_index,
                                     self.variable)

    def to_expression(self, precision: int = 6) -> str:
        parts = []
        if self.constant_child is not None:
            parts.append(self.constant_child.to_expression(precision))
        for pole, child in zip(self.poles, self.children):
            parts.append(f"({child.to_expression(precision)})/"
                         f"(j*x{self.dimension_index} - ({pole:.{precision}g}))")
        return " + ".join(parts)


def _call_child(child, x: np.ndarray) -> complex:
    """Evaluate a child expansion: leaves take the scalar input u = x[0]."""
    if isinstance(child, (PartialFractionFunction, IntegratedPartialFraction)):
        return child(float(x[0]))
    return child(x)


def _leaf_functions(states_u: np.ndarray, samples: np.ndarray,
                    options: StateFitOptions) -> tuple[list[PartialFractionFunction], StateFitReport]:
    return fit_residue_trajectories(states_u, samples, options, variable="u")


def fit_recursive_expansion(grid_axes: list[np.ndarray], samples: np.ndarray,
                            options: StateFitOptions | None = None
                            ) -> tuple[list, list[StateFitReport]]:
    """Fit functions on a tensor-product state grid, one dimension at a time.

    Parameters
    ----------
    grid_axes:
        List of 1-D arrays ``[u_axis, x2_axis, ..., xq_axis]`` defining the
        tensor grid (the first axis is the input ``u``).
    samples:
        Function samples of shape ``(F, n_u, n_2, ..., n_q)``.
    options:
        Shared :class:`StateFitOptions` for every level.

    Returns
    -------
    (functions, reports):
        ``functions[i]`` models ``samples[i]``; for a one-dimensional grid the
        functions are plain :class:`PartialFractionFunction` objects, otherwise
        nested expansions whose innermost variable is ``u``.  ``reports`` holds
        one :class:`StateFitReport` per fitted dimension (outermost first).
    """
    opts = options or StateFitOptions()
    samples = np.asarray(samples, dtype=complex)
    n_dims = len(grid_axes)
    expected_shape = tuple(len(axis) for axis in grid_axes)
    if samples.shape[1:] != expected_shape:
        raise FittingError(
            f"samples shape {samples.shape[1:]} does not match grid {expected_shape}")

    if n_dims == 1:
        functions, report = _leaf_functions(np.asarray(grid_axes[0], dtype=float),
                                            samples, opts)
        return functions, [report]

    # Fit along the outermost (last) dimension first: every combination of the
    # remaining coordinates contributes one trajectory, and all trajectories
    # share the same poles b_q.
    n_functions = samples.shape[0]
    last_axis = np.asarray(grid_axes[-1], dtype=float)
    inner_shape = samples.shape[1:-1]
    flattened = samples.reshape(n_functions * int(np.prod(inner_shape)), len(last_axis))

    outer_functions, outer_report = fit_residue_trajectories(
        last_axis, flattened, opts, variable=f"x{n_dims - 1}")
    poles = outer_report.poles
    n_poles = poles.size

    # The fitted coefficients (and constants) become new sample hyper-surfaces
    # over the remaining dimensions; recurse on those.
    coefficients = np.array([f.coefficients for f in outer_functions])   # (F*, Q)
    constants = np.array([f.constant for f in outer_functions])          # (F*,)
    coefficient_surfaces = coefficients.T.reshape(n_poles, n_functions, *inner_shape)
    child_samples = np.concatenate(
        [coefficient_surfaces.reshape(n_poles * n_functions, *inner_shape),
         constants.reshape(n_functions, *inner_shape)],
        axis=0)

    child_functions, child_reports = fit_recursive_expansion(
        grid_axes[:-1], child_samples, opts)

    functions = []
    for i in range(n_functions):
        children = [child_functions[q * n_functions + i] for q in range(n_poles)]
        constant_child = child_functions[n_poles * n_functions + i]
        functions.append(NestedPartialFraction(
            poles=poles.copy(),
            children=children,
            constant_child=constant_child,
            dimension_index=n_dims - 1,
        ))
    return functions, [outer_report] + child_reports
