"""Export of extracted models as analytical equations.

The paper's deliverable is "a set of analytical differential equations" that
can be "exported to almost any mathematical software package or behavioural
description language".  This module renders a :class:`HammersteinModel` in
three forms:

* :func:`model_equations` — a plain-text listing of the ODE system with the
  analytic static nonlinearities spelled out (atan/log expressions),
* :func:`to_verilog_a` — a Verilog-A flavoured behavioural module,
* :func:`to_python_callable` — a self-contained Python right-hand-side
  function suitable for ``scipy.integrate`` style solvers.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .hammerstein import HammersteinModel, _evaluate_state_function

__all__ = ["model_equations", "to_verilog_a", "to_python_callable"]


def _branch_label(index: int) -> str:
    return f"y{index + 1}"


def model_equations(model: HammersteinModel, precision: int = 6) -> str:
    """Human-readable listing of the extracted differential equations."""
    u = model.input_name
    lines = [
        f"// Analytical Hammerstein model extracted by recursive vector fitting",
        f"// input : {u}(t)    (state estimator x = "
        f"({u}(t)" + "".join(f", {u}(t-{d:.3g}s)" for d in model.state_estimator.delays) + "))",
        f"// output: {model.output_name}(t)",
        f"// {model.n_branches} branches, dynamic order {model.dynamic_order}, "
        f"stable by construction: {model.is_stable()}",
        "",
        "// static path (instantaneous nonlinearity)",
        f"F0({u}) = {model.static_function.to_expression(precision)}",
        "",
    ]
    for idx, branch in enumerate(model.branches):
        label = _branch_label(idx)
        pole = branch.pole
        kind = "complex pair" if branch.is_complex_pair else "real pole"
        lines.append(f"// branch {idx + 1}: {kind}, a = {pole.real:.{precision}g}"
                     f"{pole.imag:+.{precision}g}j rad/s")
        lines.append(f"f{idx + 1}({u}) = {branch.static_function.to_expression(precision)}")
        lines.append(f"d/dt {label}(t) = ({pole.real:.{precision}g}"
                     f"{pole.imag:+.{precision}g}j) * {label}(t) + f{idx + 1}({u}(t))")
        lines.append("")
    contributions = []
    for idx, branch in enumerate(model.branches):
        factor = "2*Re" if branch.is_complex_pair else "Re"
        contributions.append(f"{factor}{{{_branch_label(idx)}(t)}}")
    lines.append(f"{model.output_name}(t) = F0({u}(t))"
                 + "".join(f" + {c}" for c in contributions))
    return "\n".join(lines)


def to_verilog_a(model: HammersteinModel, module_name: str = "rvf_macromodel",
                 precision: int = 8) -> str:
    """Verilog-A flavoured behavioural module.

    Complex branches are emitted as the equivalent two-state real blocks so
    the listing only uses real arithmetic, as a behavioural simulator would
    require.  The listing is meant for export/inspection; it is not run by the
    test-suite (no Verilog-A simulator is available offline).
    """
    u, y = model.input_name, model.output_name
    lines = [
        "`include \"disciplines.vams\"",
        f"module {module_name}(pin, pout);",
        "  inout pin, pout;",
        "  electrical pin, pout;",
        f"  // extracted from {model.metadata.training_snapshots} TFT samples, "
        f"error bound {model.metadata.error_bound:g}",
    ]
    state_index = 0
    for idx, branch in enumerate(model.branches):
        if branch.is_complex_pair:
            lines.append(f"  real x{state_index}, x{state_index + 1};  // branch {idx + 1}")
            state_index += 2
        else:
            lines.append(f"  real x{state_index};  // branch {idx + 1}")
            state_index += 1
    lines.append("  analog begin")
    lines.append(f"    // static path: F0({u})")
    lines.append(f"    // F0 = {model.static_function.to_expression(precision)}")
    state_index = 0
    output_terms = ["F0"]
    for idx, branch in enumerate(model.branches):
        a = branch.pole
        f_expr = branch.static_function.to_expression(precision)
        if branch.is_complex_pair:
            sr, si = a.real, a.imag
            lines.extend([
                f"    // branch {idx + 1}: complex pair a = {sr:.{precision}g} +/- {si:.{precision}g}j",
                f"    // f{idx + 1}(u) = {f_expr}",
                f"    ddt(x{state_index})   == {sr:.{precision}g}*x{state_index} "
                f"+ {si:.{precision}g}*x{state_index + 1} + fre{idx + 1}(V(pin));",
                f"    ddt(x{state_index + 1}) == {-si:.{precision}g}*x{state_index} "
                f"+ {sr:.{precision}g}*x{state_index + 1} + fim{idx + 1}(V(pin));",
            ])
            output_terms.append(f"2.0*x{state_index}")
            state_index += 2
        else:
            lines.extend([
                f"    // branch {idx + 1}: real pole a = {a.real:.{precision}g}",
                f"    // f{idx + 1}(u) = {f_expr}",
                f"    ddt(x{state_index}) == {a.real:.{precision}g}*x{state_index} "
                f"+ f{idx + 1}(V(pin));",
            ])
            output_terms.append(f"x{state_index}")
            state_index += 1
    lines.append(f"    V(pout) <+ {' + '.join(output_terms)};")
    lines.append("  end")
    lines.append("endmodule")
    return "\n".join(lines)


def to_python_callable(model: HammersteinModel) -> Callable[[float, np.ndarray, float], np.ndarray]:
    """Right-hand side ``f(t, state, u)`` of the model ODE system.

    The state vector stacks the complex branch states as ``[Re, Im]`` pairs
    (or a single real entry for real poles).  The companion output function is
    available as the returned callable's ``output`` attribute:
    ``y = rhs.output(state, u)``.
    """
    branches = model.branches

    def rhs(t: float, state: np.ndarray, u: float) -> np.ndarray:
        derivative = np.zeros_like(state, dtype=float)
        cursor = 0
        for branch in branches:
            v = complex(_evaluate_state_function(branch.static_function,
                                                 np.array([u]))[0])
            a = branch.pole
            if branch.is_complex_pair:
                yr, yi = state[cursor], state[cursor + 1]
                derivative[cursor] = a.real * yr - a.imag * yi + v.real
                derivative[cursor + 1] = a.imag * yr + a.real * yi + v.imag
                cursor += 2
            else:
                derivative[cursor] = a.real * state[cursor] + v.real
                cursor += 1
        return derivative

    def output(state: np.ndarray, u: float) -> float:
        y = float(_evaluate_state_function(model.static_function, np.array([u]))[0].real)
        cursor = 0
        for branch in branches:
            if branch.is_complex_pair:
                y += 2.0 * state[cursor]
                cursor += 2
            else:
                y += state[cursor]
                cursor += 1
        return y

    def initial_state(u0: float) -> np.ndarray:
        values: list[float] = []
        for branch in branches:
            v = complex(_evaluate_state_function(branch.static_function,
                                                 np.array([u0]))[0])
            equilibrium = -v / branch.pole
            if branch.is_complex_pair:
                values.extend([equilibrium.real, equilibrium.imag])
            else:
                values.append(equilibrium.real)
        return np.array(values)

    rhs.output = output           # type: ignore[attr-defined]
    rhs.initial_state = initial_state  # type: ignore[attr-defined]
    rhs.n_states = model.dynamic_order  # type: ignore[attr-defined]
    return rhs
