"""The parallel Hammerstein model extracted by recursive vector fitting.

The extracted behavioural model (paper eq. (7), Figs. 2 and 4) consists of

* a *static path*: an analytical function ``F_0(x)`` of the state estimator
  whose derivative with respect to the input matches the instantaneous
  (s = 0 and direct feed-through) gain of the circuit along the trajectory;
* ``P`` parallel *Hammerstein branches*: each branch feeds a static nonlinear
  block ``f_p(x) = f_{p,0} + \\int r_p(x)\\,du`` into a first-order linear
  filter with the fixed frequency pole ``a_p``:

  .. math:: v_p = f_p(x(t)), \\qquad \\dot y_p = a_p\\,y_p + v_p

  Complex pole pairs are represented by a single complex branch whose
  contribution to the output is ``2\\,\\mathrm{Re}\\{y_p\\}`` (equivalent to
  the real 2x2 block of eqs. (12)-(14)).

The model is linear in its dynamics (fixed poles) and nonlinear only through
the static blocks — the decoupling of "nonlinear functionality" from the
"filtering function" that the paper emphasises.  Stability is guaranteed by
construction because every ``a_p`` lies in the left half plane.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..exceptions import ModelError
from ..tft.state_estimator import StateEstimator
from .residues import IntegratedPartialFraction, PartialFractionFunction

__all__ = ["HammersteinBranch", "HammersteinModel", "ModelMetadata"]


@dataclass
class HammersteinBranch:
    """One branch of the parallel Hammerstein structure."""

    pole: complex
    residue_function: object           # r_p(x): PartialFractionFunction or nested
    static_function: object            # f_p(x) = integral of r_p over the input
    is_complex_pair: bool

    def __post_init__(self) -> None:
        self.pole = complex(self.pole)
        if self.pole.real >= 0.0:
            raise ModelError(f"branch pole {self.pole} is not strictly stable")

    @property
    def order(self) -> int:
        """Number of real states this branch contributes (1 or 2)."""
        return 2 if self.is_complex_pair else 1

    def small_signal(self, states: np.ndarray, svals: np.ndarray) -> np.ndarray:
        """Small-signal contribution ``r_p(x)/(s-a_p)`` (+ conjugate for pairs).

        ``states`` has shape ``(K,)`` (scalar estimator) or ``(K, q)``;
        ``svals`` is a complex array of shape ``(L,)``.  Returns ``(K, L)``.
        """
        residues = _evaluate_state_function(self.residue_function, states)
        svals = np.asarray(svals, dtype=complex).ravel()
        term = residues[:, None] / (svals[None, :] - self.pole)
        if self.is_complex_pair:
            term = term + np.conj(residues)[:, None] / (svals[None, :] - np.conj(self.pole))
        return term

    def equilibrium_output(self, x_dc: np.ndarray | float) -> float:
        """Branch output in equilibrium at the DC state (contribution to y)."""
        v_dc = complex(_evaluate_state_function_scalar(self.static_function, x_dc))
        y_dc = -v_dc / self.pole
        return float(2.0 * y_dc.real if self.is_complex_pair else y_dc.real)

    def recurrence(self, dt: float) -> tuple[complex, complex, complex]:
        """Discrete-time recurrence coefficients at a fixed sample interval.

        Returns ``(E, W0, W1)`` such that the branch filter advances exactly
        (for piecewise-linear branch input ``v``) as

        .. math:: y_{n+1} = E\\,y_n + W_0\\,v_n + W_1\\,(v_{n+1} - v_n)

        This is the recurrence form consumed by the compiled runtime
        (:mod:`repro.runtime`), identical to the update used step-by-step in
        :func:`repro.rvf.timedomain.simulate_hammerstein`.
        """
        from .timedomain import phi1, phi2

        if dt <= 0.0:
            raise ModelError("recurrence sample interval dt must be positive")
        z = self.pole * dt
        return complex(np.exp(z)), complex(dt * phi1(z)), complex(dt * phi2(z))

    # ----------------------------------------------------------- serialization
    def to_dict(self) -> dict:
        """JSON-able description of the branch (registry serialization hook)."""
        return {
            "pole": [self.pole.real, self.pole.imag],
            "residue_function": _function_to_dict(self.residue_function),
            "static_function": _function_to_dict(self.static_function),
            "is_complex_pair": bool(self.is_complex_pair),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "HammersteinBranch":
        return cls(
            pole=complex(*data["pole"]),
            residue_function=_function_from_dict(data["residue_function"]),
            static_function=_function_from_dict(data["static_function"]),
            is_complex_pair=bool(data["is_complex_pair"]),
        )


@dataclass
class ModelMetadata:
    """Book-keeping attached to an extracted model (orders, errors, timing)."""

    n_frequency_poles: int = 0
    n_state_poles: int = 0
    frequency_fit_error: float = np.nan
    state_fit_error: float = np.nan
    hyperplane_rmse_db: float = np.nan
    build_time_seconds: float = np.nan
    error_bound: float = np.nan
    training_snapshots: int = 0
    split_static: bool = True
    notes: dict = field(default_factory=dict)


class HammersteinModel:
    """Analytical nonlinear behavioural model (SISO).

    Parameters
    ----------
    branches:
        The parallel Hammerstein branches (one per real pole or complex pair).
    gain_function:
        Instantaneous (memoryless) gain ``g_0(x)`` of the static path as an
        analytical function of the state estimator.
    static_function:
        Antiderivative of ``gain_function`` with the integration constant
        already fixed from the DC solution: ``F_0(x_dc) = y_dc``.
    state_estimator:
        Mapping from the input waveform to the state vector ``x``.
    dc_input / dc_output:
        The circuit's DC operating point used to fix integration constants.
    """

    def __init__(self, branches: Sequence[HammersteinBranch],
                 gain_function: object, static_function: object,
                 state_estimator: StateEstimator,
                 dc_input: float, dc_output: float,
                 input_name: str = "u", output_name: str = "y",
                 metadata: ModelMetadata | None = None) -> None:
        self.branches = list(branches)
        self.gain_function = gain_function
        self.static_function = static_function
        self.state_estimator = state_estimator
        self.dc_input = float(dc_input)
        self.dc_output = float(dc_output)
        self.input_name = input_name
        self.output_name = output_name
        self.metadata = metadata or ModelMetadata()

    # ------------------------------------------------------------------ shape
    @property
    def n_branches(self) -> int:
        return len(self.branches)

    @property
    def frequency_poles(self) -> np.ndarray:
        """All frequency poles including conjugates (as in the paper's P)."""
        poles: list[complex] = []
        for branch in self.branches:
            poles.append(branch.pole)
            if branch.is_complex_pair:
                poles.append(np.conj(branch.pole))
        return np.array(poles, dtype=complex)

    @property
    def dynamic_order(self) -> int:
        """Number of real states of the dynamic part."""
        return sum(branch.order for branch in self.branches)

    @property
    def state_dimension(self) -> int:
        return self.state_estimator.dimension

    def is_stable(self) -> bool:
        """Always true by construction; kept as an explicit, testable check."""
        return all(branch.pole.real < 0.0 for branch in self.branches)

    # ------------------------------------------------------------ evaluations
    def instantaneous_gain(self, states: np.ndarray) -> np.ndarray:
        """Memoryless gain ``g_0(x)`` of the static path, shape ``(K,)``."""
        return _evaluate_state_function(self.gain_function, states).real

    def static_output(self, states: np.ndarray) -> np.ndarray:
        """Static path output ``F_0(x)``, shape ``(K,)``."""
        return _evaluate_state_function(self.static_function, states).real

    def transfer_function(self, states: np.ndarray, frequencies: np.ndarray) -> np.ndarray:
        """Model TFT surface ``T(x, s)`` on a state x frequency grid.

        This is the quantity compared against the circuit's TFT data in the
        paper's Fig. 7; shape ``(K, L)``.
        """
        svals = 2j * np.pi * np.asarray(frequencies, dtype=float).ravel()
        gain = _evaluate_state_function(self.gain_function, states)
        surface = np.repeat(gain[:, None], svals.size, axis=1).astype(complex)
        for branch in self.branches:
            surface = surface + branch.small_signal(states, svals)
        return surface

    def dc_transfer(self, states: np.ndarray) -> np.ndarray:
        """Model's instantaneous DC gain ``T(x, 0)`` along the state axis."""
        return self.transfer_function(states, np.array([0.0]))[:, 0].real

    def simulate(self, times: np.ndarray, inputs: np.ndarray) -> np.ndarray:
        """Time-domain response to a sampled input waveform.

        Delegates to :func:`repro.rvf.timedomain.simulate_hammerstein`.
        """
        from .timedomain import simulate_hammerstein

        return simulate_hammerstein(self, times, inputs).outputs

    def compile(self, dt: float, input_range: tuple[float, float],
                table_size: int | None = None):
        """Compile the model into a batch-evaluable discrete-time kernel.

        Delegates to :func:`repro.runtime.compile_model` (whose default
        ``table_size`` applies when none is given); see there for the
        semantics of the sampled static tables and the recurrence matrices.
        """
        from ..runtime import compile_model
        from ..runtime.compiled import DEFAULT_TABLE_SIZE

        return compile_model(self, dt=dt, input_range=input_range,
                             table_size=DEFAULT_TABLE_SIZE
                             if table_size is None else table_size)

    # ----------------------------------------------------------- serialization
    def to_dict(self) -> dict:
        """JSON-able description of the full analytical model.

        Only models whose residue/static functions are the analytical
        partial-fraction types produced by the 1-D RVF extraction are
        serialisable; callables and nested expansions raise
        :class:`~repro.exceptions.ModelError`.
        """
        from dataclasses import asdict

        metadata = asdict(self.metadata)
        for key, value in list(metadata.items()):
            if isinstance(value, float) and np.isnan(value):
                metadata[key] = None
        return {
            "format": "hammerstein-model-v1",
            "branches": [branch.to_dict() for branch in self.branches],
            "gain_function": _function_to_dict(self.gain_function),
            "static_function": _function_to_dict(self.static_function),
            "state_estimator": {"delays": list(self.state_estimator.delays),
                                "input_index": self.state_estimator.input_index},
            "dc_input": self.dc_input,
            "dc_output": self.dc_output,
            "input_name": self.input_name,
            "output_name": self.output_name,
            "metadata": metadata,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "HammersteinModel":
        if data.get("format") != "hammerstein-model-v1":
            raise ModelError(f"unsupported model format {data.get('format')!r}")
        metadata_fields = {k: (np.nan if v is None else v)
                           for k, v in data["metadata"].items()}
        estimator = data["state_estimator"]
        return cls(
            branches=[HammersteinBranch.from_dict(b) for b in data["branches"]],
            gain_function=_function_from_dict(data["gain_function"]),
            static_function=_function_from_dict(data["static_function"]),
            state_estimator=StateEstimator(delays=tuple(estimator["delays"]),
                                           input_index=int(estimator["input_index"])),
            dc_input=data["dc_input"],
            dc_output=data["dc_output"],
            input_name=data["input_name"],
            output_name=data["output_name"],
            metadata=ModelMetadata(**metadata_fields),
        )

    # ---------------------------------------------------------------- export
    def to_equations(self, precision: int = 6) -> str:
        """Analytical differential equations as readable text."""
        from .export import model_equations

        return model_equations(self, precision=precision)

    def describe(self) -> str:
        return (f"Hammerstein model: {self.n_branches} branches "
                f"({self.frequency_poles.size} frequency poles, dynamic order "
                f"{self.dynamic_order}), state dimension {self.state_dimension}, "
                f"stable={self.is_stable()}")


# --------------------------------------------------------------------------- #
# helpers
# --------------------------------------------------------------------------- #

def _function_to_dict(function) -> dict:
    """Serialise an analytical state function; reject opaque callables."""
    if isinstance(function, (PartialFractionFunction, IntegratedPartialFraction)):
        return function.to_dict()
    raise ModelError(
        f"cannot serialise state function of type {type(function).__name__}; "
        "only the analytical partial-fraction functions of the 1-D RVF "
        "extraction round-trip through the registry")


def _function_from_dict(data: dict):
    kind = data.get("type")
    if kind == "partial_fraction":
        return PartialFractionFunction.from_dict(data)
    if kind == "integrated_partial_fraction":
        return IntegratedPartialFraction.from_dict(data)
    raise ModelError(f"unknown state-function description {kind!r}")


def _evaluate_state_function(function, states: np.ndarray) -> np.ndarray:
    """Evaluate a residue/static function on a batch of states -> (K,) complex."""
    states = np.asarray(states, dtype=float)
    if isinstance(function, (PartialFractionFunction, IntegratedPartialFraction)):
        if states.ndim == 2:
            values = function(states[:, 0])
        else:
            values = function(states)
        return np.atleast_1d(np.asarray(values, dtype=complex))
    if states.ndim == 1:
        states = states[:, None]
    return np.atleast_1d(np.asarray(function(states), dtype=complex))


def _evaluate_state_function_scalar(function, x: np.ndarray | float) -> complex:
    if np.isscalar(x):
        x_arr = np.array([x], dtype=float)
    else:
        x_arr = np.atleast_1d(np.asarray(x, dtype=float))
        if x_arr.ndim == 1 and not isinstance(
                function, (PartialFractionFunction, IntegratedPartialFraction)):
            x_arr = x_arr[None, :]
    return complex(_evaluate_state_function(function, x_arr)[0])
