"""Exception hierarchy shared across the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch a single base class.  The sub-classes separate the three layers of
the tool chain: the circuit simulator substrate, the fitting engines and the
extracted behavioural models.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` package."""


class CircuitError(ReproError):
    """Raised for malformed circuits (unknown nodes, duplicate names, ...)."""


class NetlistParseError(CircuitError):
    """Raised when a SPICE-like text netlist cannot be parsed."""

    def __init__(self, message: str, line_number: int | None = None,
                 line: str | None = None) -> None:
        self.line_number = line_number
        self.line = line
        if line_number is not None:
            message = f"line {line_number}: {message}"
        if line is not None:
            message = f"{message}  [{line.strip()!r}]"
        super().__init__(message)


class ConvergenceError(ReproError):
    """Raised when a Newton iteration or a stepping strategy fails."""

    def __init__(self, message: str, iterations: int | None = None,
                 residual: float | None = None) -> None:
        self.iterations = iterations
        self.residual = residual
        details = []
        if iterations is not None:
            details.append(f"iterations={iterations}")
        if residual is not None:
            details.append(f"residual={residual:.3e}")
        if details:
            message = f"{message} ({', '.join(details)})"
        super().__init__(message)


class SingularMatrixError(ReproError):
    """Raised when an MNA system matrix is singular or near singular."""


class FittingError(ReproError):
    """Raised when vector fitting or recursive vector fitting fails."""


class ModelError(ReproError):
    """Raised for inconsistent extracted models (e.g. unstable poles)."""


class RegistryError(ReproError):
    """Raised for corrupt or inconsistent model-registry entries.

    Covers truncated/unreadable array archives, metadata whose recorded
    content hash no longer matches the stored arrays, and lookups of keys
    that are not present in the registry directory.
    """


class ServeError(ReproError):
    """Raised by the model-serving layer (:mod:`repro.serve`).

    Covers rejected requests (oversized payloads, non-finite samples, closed
    servers, full queues), shard jobs that exhausted their crash-retry
    budget, and worker-side evaluation failures propagated back to the
    submitting caller's future.
    """


class ServerClosedError(ServeError):
    """Raised for submissions to a :class:`~repro.serve.server.ModelServer`
    after its ``close()`` — typed so transports (the gateway) can classify
    it without inspecting message prose."""


class GatewayError(ServeError):
    """Raised by the network front-end (:mod:`repro.gateway`).

    Covers failed connections (gateway closed or never started, connection
    limit reached), per-request error replies relayed over the wire, and
    connections dropped with requests outstanding.
    """


class RunStoreError(ReproError):
    """Raised by the durable telemetry store (:mod:`repro.telemetry.runstore`).

    Covers opening a corrupted or non-database file, operations on a closed
    store, and lookups of unknown run ids.
    """


class FrameError(GatewayError):
    """Raised for malformed gateway protocol frames.

    ``request_id`` is the id recovered from the frame when the fixed prefix
    was intact (``0`` when even that was unreadable) and ``code`` the wire
    error code the gateway reports back for it — both let the server fail
    exactly the offending request, or only the offending connection when the
    stream can no longer be trusted.
    """

    def __init__(self, message: str, request_id: int = 0,
                 code: int | None = None) -> None:
        self.request_id = int(request_id)
        self.code = code
        super().__init__(message)
