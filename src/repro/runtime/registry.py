"""Persistent, content-hash-keyed storage of compiled models.

A sweep extracted and compiled in one process becomes servable from any other
process: the registry writes each :class:`~repro.runtime.compiled.
CompiledModel` as a pair of files under one directory,

* ``<key>.npz`` — the array payload (recurrence coefficients, static tables),
* ``<key>.json`` — metadata: the scalar payload, the recorded extraction
  metadata and provenance (the :meth:`Scenario.recipe
  <repro.sweep.scenarios.Scenario.recipe>` records of the training sweep,
  extraction options, error bound), plus the content hash for integrity
  checking.

``key`` is the SHA-256 content hash of the canonical model payload (array
bytes + scalars), so identical models deduplicate naturally, keys are stable
across processes and platforms with identical float semantics, and any
corruption — truncated archives, tampered metadata, bit rot — is detected at
load time and raised as :class:`~repro.exceptions.RegistryError`.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np

from ..exceptions import RegistryError
from .compiled import FORMAT, CompiledModel

__all__ = ["ModelRegistry", "content_hash"]


def content_hash(model: CompiledModel) -> str:
    """SHA-256 over the canonical payload of a compiled model.

    The hash covers the array fields (name, dtype, shape and raw bytes in
    canonical field order) and the scalar payload; it deliberately excludes
    free-form metadata/provenance, so re-registering the same model trained
    by a differently-described sweep lands on the same key.
    """
    digest = hashlib.sha256()
    for name, array in model.arrays().items():
        array = np.ascontiguousarray(array)
        digest.update(name.encode())
        digest.update(str(array.dtype).encode())
        digest.update(repr(array.shape).encode())
        digest.update(array.tobytes())
    digest.update(json.dumps(model.scalars(), sort_keys=True).encode())
    return digest.hexdigest()


class ModelRegistry:
    """Directory-backed store of compiled models.

    Parameters
    ----------
    root:
        Registry directory; created on first save if missing.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    # ------------------------------------------------------------------ paths
    def _npz_path(self, key: str) -> Path:
        return self.root / f"{key}.npz"

    def _json_path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    # ------------------------------------------------------------------- save
    def save(self, model: CompiledModel, provenance: dict | None = None) -> str:
        """Store a compiled model; returns its content-hash key.

        Saving an already-registered model leaves the array archive untouched
        and merges the given ``provenance`` keys into the existing metadata
        record (a model retrained from an identical recipe hashes to the same
        key, and earlier traceability is never lost).
        """
        key = content_hash(model)
        self.root.mkdir(parents=True, exist_ok=True)
        existing_provenance: dict = {}
        if key in self:
            try:
                existing_provenance = self.provenance(key)
            except (RegistryError, json.JSONDecodeError):
                existing_provenance = {}
        else:
            with open(self._npz_path(key), "wb") as handle:
                np.savez(handle, **model.arrays())
        record = {
            "content_hash": key,
            **model.scalars(),
            "metadata": model.metadata,
            "provenance": {**existing_provenance, **(provenance or {})},
        }
        self._json_path(key).write_text(json.dumps(record, indent=2,
                                                   sort_keys=True, default=repr))
        return key

    # ------------------------------------------------------------------- load
    def load(self, key: str, verify: bool = True) -> CompiledModel:
        """Load a compiled model by key.

        With ``verify`` (the default) the arrays are re-hashed and compared
        against both the key and the recorded metadata hash; any mismatch —
        truncated ``npz``, swapped files, edited metadata — raises
        :class:`~repro.exceptions.RegistryError`.
        """
        npz_path, json_path = self._npz_path(key), self._json_path(key)
        if not npz_path.exists() or not json_path.exists():
            missing = [label for label, path in (("arrays", npz_path),
                                                 ("metadata", json_path))
                       if not path.exists()]
            raise RegistryError(f"no registry entry {key!r} under {self.root} "
                                f"(missing {' and '.join(missing)})")

        try:
            record = json.loads(json_path.read_text())
        except (json.JSONDecodeError, OSError) as exc:
            raise RegistryError(f"unreadable registry metadata {json_path}: {exc}") from exc
        if record.get("format") != FORMAT:
            raise RegistryError(
                f"registry entry {key!r} has unsupported format "
                f"{record.get('format')!r} (expected {FORMAT!r})")

        try:
            with np.load(npz_path) as archive:
                arrays = {name: archive[name] for name in CompiledModel._ARRAY_FIELDS}
        except Exception as exc:  # zipfile/OSError/KeyError: all mean "corrupt"
            raise RegistryError(
                f"corrupt registry archive {npz_path}: {exc}") from exc

        model = CompiledModel(
            dt=float(record["dt"]), u_min=float(record["u_min"]),
            u_max=float(record["u_max"]),
            input_name=record.get("input_name", "u"),
            output_name=record.get("output_name", "y"),
            metadata=record.get("metadata", {}),
            **arrays,
        )
        if verify:
            actual = content_hash(model)
            recorded = record.get("content_hash")
            if actual != key or recorded != key:
                raise RegistryError(
                    f"registry entry {key!r} failed integrity verification: "
                    f"arrays hash to {actual[:12]}..., metadata records "
                    f"{str(recorded)[:12]}...")
        return model

    def provenance(self, key: str) -> dict:
        """The provenance record stored alongside a model."""
        json_path = self._json_path(key)
        if not json_path.exists():
            raise RegistryError(f"no registry entry {key!r} under {self.root}")
        return json.loads(json_path.read_text()).get("provenance", {})

    # ------------------------------------------------------------------ admin
    def keys(self) -> list[str]:
        """Keys of all complete entries (metadata + arrays present)."""
        if not self.root.is_dir():
            return []
        return sorted(p.stem for p in self.root.glob("*.json")
                      if self._npz_path(p.stem).exists())

    def __contains__(self, key: str) -> bool:
        return self._npz_path(key).exists() and self._json_path(key).exists()

    def __len__(self) -> int:
        return len(self.keys())

    def remove(self, key: str) -> None:
        """Delete an entry (both files); missing entries raise."""
        if key not in self:
            raise RegistryError(f"no registry entry {key!r} under {self.root}")
        self._npz_path(key).unlink()
        self._json_path(key).unlink()

    def describe(self) -> str:
        keys = self.keys()
        return f"model registry at {self.root}: {len(keys)} model(s)"
