"""Persistent, content-hash-keyed storage of compiled models.

A sweep extracted and compiled in one process becomes servable from any other
process: the registry writes each :class:`~repro.runtime.compiled.
CompiledModel` as a pair of files under one directory,

* ``<key>.npz`` — the array payload (recurrence coefficients, static tables),
* ``<key>.json`` — metadata: the scalar payload, the recorded extraction
  metadata and provenance (the :meth:`Scenario.recipe
  <repro.sweep.scenarios.Scenario.recipe>` records of the training sweep,
  extraction options, error bound), plus the content hash for integrity
  checking.

``key`` is the SHA-256 content hash of the canonical model payload (array
bytes + scalars), so identical models deduplicate naturally, keys are stable
across processes and platforms with identical float semantics, and any
corruption — truncated archives, tampered metadata, bit rot — is detected at
load time and raised as :class:`~repro.exceptions.RegistryError`.

Registries additionally maintain a **persistent index** (``_index.json``)
mapping keys to entry sizes, so :meth:`ModelRegistry.keys` and membership
tests are O(1) file reads instead of O(n) directory scans — the difference
between a registry fronting ten models and one fronting hundreds of
thousands.  The index is advisory: it is rebuilt from the directory whenever
it is missing, unparsable or older than the directory contents, and
:meth:`ModelRegistry.load` always verifies against the actual files.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..exceptions import RegistryError
from .compiled import FORMAT, CompiledModel

__all__ = ["ModelRegistry", "ModelHandle", "content_hash"]

#: Name of the persistent index file inside a registry directory.
INDEX_NAME = "_index.json"
#: Index schema version; bumping it forces a rebuild on older indexes.
INDEX_VERSION = 1


def content_hash(model: CompiledModel) -> str:
    """SHA-256 over the canonical payload of a compiled model.

    The hash covers the array fields (name, dtype, shape and raw bytes in
    canonical field order) and the scalar payload; it deliberately excludes
    free-form metadata/provenance, so re-registering the same model trained
    by a differently-described sweep lands on the same key.
    """
    digest = hashlib.sha256()
    for name, array in model.arrays().items():
        array = np.ascontiguousarray(array)
        digest.update(name.encode())
        digest.update(str(array.dtype).encode())
        digest.update(repr(array.shape).encode())
        digest.update(array.tobytes())
    digest.update(json.dumps(model.scalars(), sort_keys=True).encode())
    return digest.hexdigest()


class ModelRegistry:
    """Directory-backed store of compiled models.

    Parameters
    ----------
    root:
        Registry directory; created on first save if missing.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        #: In-memory cache of the parsed index, keyed by the index file's
        #: ``st_mtime_ns`` so repeated ``keys()`` calls cost one ``stat``.
        self._index_cache: tuple[int, dict] | None = None

    # ------------------------------------------------------------------ paths
    def _npz_path(self, key: str) -> Path:
        return self.root / f"{key}.npz"

    def _json_path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def _index_path(self) -> Path:
        return self.root / INDEX_NAME

    # ------------------------------------------------------------------ index
    def _read_index(self, allow_stale: bool = False) -> dict | None:
        """The parsed index, or ``None`` when missing, corrupt or stale.

        Staleness is one ``stat`` pair: :meth:`_write_index` stamps the index
        file's mtime to the directory's, so any foreign file created or
        removed afterwards leaves ``root mtime > index mtime`` and forces a
        rebuild.  The registry's own write paths pass ``allow_stale=True``:
        they have just modified the directory themselves (entry files are
        written before the index update), and going through the staleness
        check there would turn every save into a full rescan.

        Limitation: a *foreign* change landing in the same filesystem
        timestamp tick as the stamp is indistinguishable from freshness
        (sub-ns on ext4, coarser elsewhere).  Concurrent cross-process
        mutation is advisory territory throughout this class — ``load``
        always verifies real files, and :meth:`rebuild_index` is the
        belt-and-braces reconciliation.
        """
        try:
            index_mtime = self._index_path().stat().st_mtime_ns
            root_mtime = self.root.stat().st_mtime_ns
        except OSError:
            return None
        if root_mtime > index_mtime and not allow_stale:
            return None
        if self._index_cache is not None and self._index_cache[0] == index_mtime:
            return self._index_cache[1]
        try:
            data = json.loads(self._index_path().read_text())
        except (json.JSONDecodeError, OSError):
            return None
        if (not isinstance(data, dict) or data.get("version") != INDEX_VERSION
                or not isinstance(data.get("entries"), dict)):
            return None
        self._index_cache = (index_mtime, data)
        return data

    def _write_index(self, data: dict) -> None:
        """Atomically persist the index and stamp it fresh (see _read_index)."""
        if not self.root.is_dir():
            return
        fd, tmp = tempfile.mkstemp(dir=self.root, prefix="_index-", suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(data, handle, sort_keys=True)
            os.replace(tmp, self._index_path())
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return
        stamp = self.root.stat().st_mtime_ns
        os.utime(self._index_path(), ns=(stamp, stamp))
        self._index_cache = (stamp, data)

    def _ensure_index(self) -> dict:
        """The current index, rebuilding from the directory when needed."""
        data = self._read_index()
        if data is None:
            data = self.rebuild_index()
        return data

    def rebuild_index(self) -> dict:
        """Rescan the directory and rewrite the persistent index.

        Called automatically whenever the index is missing, unparsable, from
        an older schema version, or stale (files were added or removed behind
        the registry's back); callable directly for belt-and-braces repair.
        """
        entries: dict[str, dict] = {}
        if self.root.is_dir():
            for json_path in self.root.glob("*.json"):
                key = json_path.stem
                if key.startswith("_"):
                    continue
                npz_path = self._npz_path(key)
                try:
                    nbytes = npz_path.stat().st_size + json_path.stat().st_size
                except OSError:      # incomplete entry: metadata without arrays
                    continue
                entries[key] = {"nbytes": int(nbytes)}
        data = {"version": INDEX_VERSION, "entries": entries}
        self._write_index(data)
        return data

    def _index_put(self, key: str) -> None:
        """Add/refresh one entry after its files were written.

        Reads the index with ``allow_stale=True``: the caller (``save``)
        validated the index through its membership check *before* touching
        the directory, so the only "staleness" here is our own entry write —
        a strict read would rescan on every save.
        """
        data = self._read_index(allow_stale=True)
        if data is None:
            self.rebuild_index()        # missing/corrupt; rescan covers key
            return
        try:
            nbytes = (self._npz_path(key).stat().st_size
                      + self._json_path(key).stat().st_size)
        except OSError:
            return
        data["entries"][key] = {"nbytes": int(nbytes)}
        self._write_index(data)

    def _index_drop(self, key: str, trusted: bool = False) -> None:
        """Remove one entry from the index.

        ``trusted`` mirrors :meth:`_index_put`'s reasoning and is only
        passed by ``remove`` (whose membership check just validated the
        index; the sole directory change since is its own unlinks).  The
        untrusted path — ``load`` discovering missing files — rebuilds on a
        stale index instead of delta-updating it: the directory demonstrably
        changed behind our back, and stamping a stale index fresh would hide
        entries added alongside the deletion.
        """
        data = self._read_index(allow_stale=trusted)
        if data is None:
            self.rebuild_index()
            return
        if key in data["entries"]:
            del data["entries"][key]
            self._write_index(data)

    # ------------------------------------------------------------------- save
    def save(self, model: CompiledModel, provenance: dict | None = None) -> str:
        """Store a compiled model; returns its content-hash key.

        ``save`` is **idempotent**: a model with the same content hash is
        never written twice — the array archive is reused as-is, and
        re-saving without new provenance leaves every file untouched
        byte-for-byte.  When new ``provenance`` keys are given for an
        existing model they are merged into the existing metadata record (a
        model retrained from an identical recipe hashes to the same key, and
        earlier traceability is never lost).
        """
        key = content_hash(model)
        self.root.mkdir(parents=True, exist_ok=True)
        existing_record: dict | None = None
        if key in self:
            try:
                existing_record = json.loads(self._json_path(key).read_text())
            except (OSError, json.JSONDecodeError):
                existing_record = None     # unreadable: rewrite it below
        else:
            with open(self._npz_path(key), "wb") as handle:
                np.savez(handle, **model.arrays())
        existing_provenance = (existing_record or {}).get("provenance", {})
        record = {
            "content_hash": key,
            **model.scalars(),
            "metadata": model.metadata,
            "provenance": {**existing_provenance, **(provenance or {})},
        }
        # No-op only when the would-be record matches what is stored, field
        # for field (content_hash excludes metadata/provenance, so either may
        # legitimately change under the same key).  Compared after a JSON
        # round trip so type normalisation (tuples, reprs) cannot fake a
        # difference — or hide one.
        canonical = json.loads(json.dumps(record, sort_keys=True, default=repr))
        if existing_record is not None and canonical == existing_record:
            return key
        self._json_path(key).write_text(json.dumps(record, indent=2,
                                                   sort_keys=True, default=repr))
        self._index_put(key)
        return key

    # ------------------------------------------------------------------- load
    def load(self, key: str, verify: bool = True) -> CompiledModel:
        """Load a compiled model by key.

        With ``verify`` (the default) the arrays are re-hashed and compared
        against both the key and the recorded metadata hash; any mismatch —
        truncated ``npz``, swapped files, edited metadata — raises
        :class:`~repro.exceptions.RegistryError`.
        """
        npz_path, json_path = self._npz_path(key), self._json_path(key)
        if not npz_path.exists() or not json_path.exists():
            missing = [label for label, path in (("arrays", npz_path),
                                                 ("metadata", json_path))
                       if not path.exists()]
            self._index_drop(key)
            raise RegistryError(f"no registry entry {key!r} under {self.root} "
                                f"(missing {' and '.join(missing)})")

        try:
            record = json.loads(json_path.read_text())
        except (json.JSONDecodeError, OSError) as exc:
            raise RegistryError(f"unreadable registry metadata {json_path}: {exc}") from exc
        if record.get("format") != FORMAT:
            raise RegistryError(
                f"registry entry {key!r} has unsupported format "
                f"{record.get('format')!r} (expected {FORMAT!r})")

        try:
            with np.load(npz_path) as archive:
                arrays = {name: archive[name] for name in CompiledModel._ARRAY_FIELDS}
        except Exception as exc:  # zipfile/OSError/KeyError: all mean "corrupt"
            raise RegistryError(
                f"corrupt registry archive {npz_path}: {exc}") from exc

        model = CompiledModel(
            dt=float(record["dt"]), u_min=float(record["u_min"]),
            u_max=float(record["u_max"]),
            input_name=record.get("input_name", "u"),
            output_name=record.get("output_name", "y"),
            metadata=record.get("metadata", {}),
            **arrays,
        )
        if verify:
            actual = content_hash(model)
            recorded = record.get("content_hash")
            if actual != key or recorded != key:
                raise RegistryError(
                    f"registry entry {key!r} failed integrity verification: "
                    f"arrays hash to {actual[:12]}..., metadata records "
                    f"{str(recorded)[:12]}...")
        return model

    def provenance(self, key: str) -> dict:
        """The provenance record stored alongside a model."""
        json_path = self._json_path(key)
        if not json_path.exists():
            raise RegistryError(f"no registry entry {key!r} under {self.root}")
        return json.loads(json_path.read_text()).get("provenance", {})

    # ------------------------------------------------------------------ admin
    def keys(self) -> list[str]:
        """Keys of all complete entries (metadata + arrays present).

        Served from the persistent index — O(1) in the number of entries
        after the first call — instead of scanning the directory; the index
        is rebuilt transparently when files changed behind the registry's
        back (see :meth:`rebuild_index`).
        """
        if not self.root.is_dir():
            return []
        return sorted(self._ensure_index()["entries"])

    def __contains__(self, key: str) -> bool:
        if not self.root.is_dir():
            return False
        return key in self._ensure_index()["entries"]

    def __len__(self) -> int:
        return len(self.keys())

    def entry_nbytes(self, key: str) -> int:
        """On-disk footprint of one entry (arrays + metadata), from the index."""
        if not self.root.is_dir():
            raise RegistryError(f"no registry entry {key!r} under {self.root}")
        entry = self._ensure_index()["entries"].get(key)
        if entry is None:
            raise RegistryError(f"no registry entry {key!r} under {self.root}")
        return int(entry["nbytes"])

    def remove(self, key: str) -> None:
        """Delete an entry (both files); missing entries raise."""
        if key not in self:
            raise RegistryError(f"no registry entry {key!r} under {self.root}")
        self._npz_path(key).unlink()
        self._json_path(key).unlink()
        self._index_drop(key, trusted=True)

    def handle(self, key: str) -> "ModelHandle":
        """A picklable reference to one entry (for cross-process serving)."""
        if key not in self:
            raise RegistryError(f"no registry entry {key!r} under {self.root}")
        return ModelHandle(str(self.root), key)

    def describe(self) -> str:
        keys = self.keys()
        return f"model registry at {self.root}: {len(keys)} model(s)"


@dataclass(frozen=True)
class ModelHandle:
    """Serializable reference to one registry entry: ``(root, key)``.

    Handles are what cross process boundaries in the serving layer
    (:mod:`repro.serve`): a tiny picklable value instead of megabytes of
    model arrays.  ``load`` re-opens the registry in the receiving process
    with full integrity verification, so a handle can never smuggle a
    tampered model past the content-hash check.
    """

    root: str
    key: str

    def registry(self) -> ModelRegistry:
        return ModelRegistry(self.root)

    def load(self, verify: bool = True) -> CompiledModel:
        return self.registry().load(self.key, verify=verify)
