"""Lock-step batched evaluation of compiled Hammerstein models.

This is the serving hot path: thousands of stimuli stacked into one
``(n_stimuli, n_steps)`` array, all model state vectors advanced together.
Per time step the kernel performs a handful of fused array operations on
``(n_states, chunk)`` blocks — there is no per-stimulus Python whatsoever,
which is what buys the orders-of-magnitude margin over re-simulating each
stimulus through the full transient engine (the paper's reported speed-up,
multiplied across the batch axis).

The batch axis is memory-chunked the same way
:func:`repro.circuit.linalg.batched_transfer` chunks its frequency axis: the
transient per-chunk workspace (interpolated branch drives plus the
pre-combined recurrence drive) is kept below ``max_chunk_bytes``.  Chunking
never changes results — stimuli are independent and every operation is
element-wise along the batch axis — so the same batch evaluated with any
chunk size is bitwise identical.
"""

from __future__ import annotations

import time

import numpy as np

from ..exceptions import ModelError

__all__ = ["evaluate_batch", "shard_slices", "stack_stimuli"]


def shard_slices(n_rows: int, n_shards: int) -> list[slice]:
    """Deterministic contiguous partition of a batch axis into shards.

    The canonical split used by the shard pool (:mod:`repro.serve.shards`):
    rows stay in order, the first ``n_rows % n_shards`` shards take one extra
    row (``np.array_split`` semantics), and empty trailing shards are
    dropped.  Because :func:`evaluate_batch` is element-wise along the batch
    axis and bitwise chunk-invariant, evaluating the slices independently and
    concatenating reproduces the single-process result bit for bit.
    """
    n_rows = int(n_rows)
    n_shards = max(1, min(int(n_shards), n_rows if n_rows else 1))
    base, extra = divmod(n_rows, n_shards)
    slices: list[slice] = []
    start = 0
    for i in range(n_shards):
        size = base + (1 if i < extra else 0)
        if size == 0:
            break
        slices.append(slice(start, start + size))
        start += size
    return slices


def stack_stimuli(waveforms, times: np.ndarray) -> np.ndarray:
    """Sample a collection of waveforms onto one time grid, shape ``(B, K)``.

    ``waveforms`` is an iterable of :class:`repro.circuit.waveforms.Waveform`
    (or plain callables); ``times`` the uniform serving grid, typically
    :meth:`CompiledModel.time_axis <repro.runtime.compiled.CompiledModel.
    time_axis>`.
    """
    times = np.asarray(times, dtype=float).ravel()
    rows = []
    for waveform in waveforms:
        sample = getattr(waveform, "sample", None)
        if callable(sample):
            rows.append(np.asarray(sample(times), dtype=float))
        else:
            rows.append(np.array([float(waveform(t)) for t in times]))
    if not rows:
        raise ModelError("stack_stimuli needs at least one waveform")
    return np.vstack(rows)


def evaluate_batch(model, inputs: np.ndarray,
                   max_chunk_bytes: int = 256 << 20,
                   out: np.ndarray | None = None,
                   timings: dict | None = None) -> np.ndarray:
    """Evaluate a :class:`~repro.runtime.compiled.CompiledModel` on a batch.

    Parameters
    ----------
    model:
        The compiled model (fixed ``dt``).
    inputs:
        Input samples on the model's uniform time grid: ``(B, K)`` for a batch
        of ``B`` stimuli, or 1-D ``(K,)`` for a single stimulus (returned
        shape matches the input shape).  Values outside the compiled
        ``[u_min, u_max]`` table span are clamped to the edges.
    max_chunk_bytes:
        Bound on the transient per-chunk workspace; the batch axis is split
        accordingly.
    out:
        Optional pre-allocated float64 output array of the same shape as
        ``inputs``; results are written into it and it is returned.  This is
        the zero-copy path of the shared-memory shard dataplane
        (:mod:`repro.serve.shards`): workers evaluate straight into their
        shared segment instead of materialising a result to pickle.
    timings:
        Optional dict the call **adds** its per-phase wall time into:
        ``eval_s`` (recurrence kernel) and ``stage_out_s`` (copying chunk
        results into ``outputs`` — for the shm dataplane, the write into
        the shared segment).  This is how shard workers attribute their
        stage timings without touching the tracer: the stamps ride the
        reply descriptor and the parent materialises the spans.  ``None``
        (the default) keeps the hot loop free of clock reads.
    """
    inputs = np.asarray(inputs, dtype=float)
    single = inputs.ndim == 1
    if single:
        inputs = inputs[None, :]
    if inputs.ndim != 2:
        raise ModelError(f"inputs must be (n_stimuli, n_steps); got {inputs.shape}")
    if out is not None:
        if out.shape != (inputs.shape[0], inputs.shape[1]) and not (
                single and out.shape == (inputs.shape[1],)):
            raise ModelError(
                f"out array shape {out.shape} does not match input shape "
                f"{inputs.shape[1:] if single else inputs.shape}")
        if out.dtype != np.float64:
            raise ModelError(f"out array must be float64; got {out.dtype}")
    n_batch, n_steps = inputs.shape
    if n_steps < 1:
        raise ModelError("need at least one time sample")
    finite = np.isfinite(inputs)
    if not finite.all():
        # NaN/Inf would sail through np.clip and the intp cast into undefined
        # table indices, silently producing garbage outputs for the whole row.
        bad_rows = np.flatnonzero(~finite.all(axis=1))
        first_row = int(bad_rows[0])
        first_step = int(np.flatnonzero(~finite[first_row])[0])
        raise ModelError(
            f"stimulus batch contains non-finite samples: {bad_rows.size} of "
            f"{n_batch} row(s) affected, first at row {first_row} (stimulus "
            f"{first_row}), step {first_step} "
            f"(value {inputs[first_row, first_step]!r})")

    # Peak per-stimulus workspace of _evaluate_block: vr/vi tables (2P rows of
    # K floats), their fancy-indexed per-state copies vr_s/vi_s (2S rows), the
    # pre-combined drive (S rows) plus np.diff/product temporaries (~S rows)
    # and a handful of scalar-per-step rows (u, knots, static, outputs).
    rows = (2 * model.n_branches + 4 * model.n_states + 6)
    per_stim = 8 * n_steps * rows
    chunk = max(1, int(max_chunk_bytes // max(per_stim, 1)))

    if out is None:
        outputs = np.empty_like(inputs)
    else:
        outputs = out[None, :] if out.ndim == 1 else out
    if timings is None:
        for start in range(0, n_batch, chunk):
            block = inputs[start:start + chunk]
            outputs[start:start + chunk] = _evaluate_block(model, block)
    else:
        eval_s = stage_out_s = 0.0
        for start in range(0, n_batch, chunk):
            block = inputs[start:start + chunk]
            t0 = time.monotonic()
            result = _evaluate_block(model, block)
            t1 = time.monotonic()
            outputs[start:start + chunk] = result
            eval_s += t1 - t0
            stage_out_s += time.monotonic() - t1
        timings["eval_s"] = timings.get("eval_s", 0.0) + eval_s
        timings["stage_out_s"] = timings.get("stage_out_s", 0.0) + stage_out_s
    return outputs[0] if single else outputs


def _table_lookup(table: np.ndarray, idx: np.ndarray, frac: np.ndarray) -> np.ndarray:
    """Linear interpolation of (stacked) uniform tables at precomputed knots.

    ``table`` is ``(..., n_table)``; ``idx``/``frac`` index along the last
    axis with shapes broadcastable to the output ``(..., *idx.shape)``.
    """
    return table[..., idx] * (1.0 - frac) + table[..., idx + 1] * frac


def _evaluate_block(model, u: np.ndarray) -> np.ndarray:
    """Advance one (chunk, n_steps) block through the compiled recurrence."""
    n_block, n_steps = u.shape

    # Uniform-grid interpolation knots, shared by every table.
    du = (model.u_max - model.u_min) / (model.n_table - 1)
    pos = (np.clip(u, model.u_min, model.u_max) - model.u_min) / du
    idx = np.minimum(pos.astype(np.intp), model.n_table - 2)
    frac = pos - idx

    static = _table_lookup(model.static_table, idx, frac)          # (B, K)
    if model.n_branches == 0:
        return static

    vr = _table_lookup(model.branch_vr, idx, frac)                  # (P, B, K)
    vi = _table_lookup(model.branch_vi, idx, frac)

    sb = model.state_branch
    # Pre-combine the per-state recurrence drive for all steps:
    #   drive[:, :, n] = b0 * v_n + b1 * (v_{n+1} - v_n)   (real arithmetic)
    vr_s, vi_s = vr[sb], vi[sb]                                     # (S, B, K)
    drive = (model.b0r[:, None, None] * vr_s[:, :, :-1]
             + model.b0i[:, None, None] * vi_s[:, :, :-1]
             + model.b1r[:, None, None] * np.diff(vr_s, axis=2)
             + model.b1i[:, None, None] * np.diff(vi_s, axis=2))    # (S, B, K-1)

    # Equilibrium initial condition from the first sample's branch drives.
    state = (model.init_vr[:, None] * vr_s[:, :, 0]
             + model.init_vi[:, None] * vi_s[:, :, 0])              # (S, B)

    outputs = np.empty((n_block, n_steps))
    c = model.c_out
    outputs[:, 0] = static[:, 0] + c @ state
    a_diag = model.a_diag[:, None]
    a_off = model.a_off[:, None]
    partner = model.partner
    for n in range(n_steps - 1):
        state = a_diag * state + a_off * state[partner] + drive[:, :, n]
        outputs[:, n + 1] = static[:, n + 1] + c @ state
    return outputs
