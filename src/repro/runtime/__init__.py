"""Compiled model runtime: batch serving of extracted surrogate models.

The paper extracts an analytical Hammerstein model so the full nonlinear
circuit never has to be simulated again; this package is the serving side of
that bargain.  It turns extraction results into deployable artifacts:

* :mod:`~repro.runtime.compiled` — fold a model's poles/residues into
  real-valued discrete-time recurrence matrices at a fixed sample rate and
  tabulate its static nonlinear maps (:func:`compile_model` /
  :class:`CompiledModel`);
* :mod:`~repro.runtime.batch` — evaluate thousands of stimuli in lock-step
  as one ``(n_stimuli, n_steps)`` array, memory-chunked along the batch axis
  (:func:`evaluate_batch`, :func:`stack_stimuli`);
* :mod:`~repro.runtime.registry` — content-hash-keyed persistence of
  compiled models with provenance metadata, so a sweep run in one process is
  served from any other (:class:`ModelRegistry`);
* :mod:`~repro.runtime.validate` — replay a scenario family through both the
  full :mod:`assembly <repro.circuit.assembly>` engine and the compiled model
  and report per-scenario drift (:func:`validate_model`).

The canonical flow is **compile → register → batch-serve → validate**; see
the ROADMAP quickstart for a complete example.
"""

from .batch import evaluate_batch, shard_slices, stack_stimuli
from .compiled import CompiledModel, compile_model
from .registry import ModelHandle, ModelRegistry, content_hash
from .validate import ValidationReport, ValidationRow, validate_model

__all__ = [
    "CompiledModel",
    "compile_model",
    "evaluate_batch",
    "shard_slices",
    "stack_stimuli",
    "ModelHandle",
    "ModelRegistry",
    "content_hash",
    "validate_model",
    "ValidationReport",
    "ValidationRow",
]
