"""Model-vs-simulator validation of compiled surrogates.

The paper's whole premise is that the extracted model *replaces* the
transistor-level circuit; a served surrogate is only trustworthy while
somebody measures how far it drifts from the simulator it replaced.  This
harness replays a :mod:`repro.sweep` scenario family through both paths —

1. the full nonlinear circuit via the compiled :mod:`assembly
   <repro.circuit.assembly>` transient engine (``run_sweep``), and
2. the compiled model via the batched runtime kernel, every scenario's
   stimulus stacked into one lock-step evaluation —

and reports per-scenario error metrics through :mod:`repro.analysis`.  The
headline figure is each scenario's *relative* time-domain RMSE (RMSE over the
RMS of the simulator reference), compared against the extraction's recorded
``error_bound``: a model that met the bound on its training hyperplane should
stay within the same order of magnitude on stimuli from the family it was
trained for.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field

import numpy as np

from ..analysis import BatchErrorReport, ascii_table, batched_waveform_errors
from ..exceptions import ModelError
from ..sweep import SweepOptions, run_sweep
from ..sweep.runner import SweepResult
from .compiled import CompiledModel

__all__ = ["ValidationRow", "ValidationReport", "validate_model"]


@dataclass
class ValidationRow:
    """Per-scenario outcome of a validation replay."""

    name: str
    n_steps: int
    rmse: float
    relative_rmse: float
    max_abs_error: float

    def cells(self) -> list[str]:
        return [self.name, str(self.n_steps), f"{self.rmse:.3e}",
                f"{self.relative_rmse:.3e}", f"{self.max_abs_error:.3e}"]


@dataclass
class ValidationReport:
    """Sim-vs-model comparison of one scenario family."""

    rows: list[ValidationRow]
    error_bound: float | None
    sim_wall_time: float
    model_wall_time: float
    errors: BatchErrorReport | None = field(repr=False, default=None)

    HEADER = ["Scenario", "Steps", "RMSE", "Relative RMSE", "Max abs error"]

    @property
    def n_scenarios(self) -> int:
        return len(self.rows)

    @property
    def max_relative_rmse(self) -> float:
        return max(row.relative_rmse for row in self.rows)

    @property
    def within_bound(self) -> bool:
        """Whether every scenario's relative RMSE meets the error bound.

        False when no bound is known — an unbounded validation can only be
        inspected, not passed.
        """
        if self.error_bound is None:
            return False
        return self.max_relative_rmse <= self.error_bound

    @property
    def speedup(self) -> float:
        """Wall-clock ratio full-engine sweep vs batched model evaluation."""
        return self.sim_wall_time / self.model_wall_time \
            if self.model_wall_time > 0 else np.inf

    def render(self) -> str:
        return ascii_table(self.HEADER, [row.cells() for row in self.rows])

    def summary(self) -> str:
        bound = "no bound" if self.error_bound is None else f"bound {self.error_bound:.1e}"
        verdict = "PASS" if self.within_bound else "no-pass"
        return (f"validated {self.n_scenarios} scenario(s): max relative RMSE "
                f"{self.max_relative_rmse:.2e} ({bound}: {verdict}), "
                f"sim {self.sim_wall_time:.2f}s vs model "
                f"{self.model_wall_time * 1e3:.1f}ms ({self.speedup:.0f}x)")


def validate_model(model: CompiledModel, scenarios,
                   error_bound: float | None = None,
                   sweep_options: SweepOptions | None = None,
                   sweep_result: SweepResult | None = None) -> ValidationReport:
    """Replay a scenario family through simulator and compiled model.

    Parameters
    ----------
    model:
        The compiled model under test (its ``dt`` defines the comparison
        grid; the simulator output is interpolated onto it).
    scenarios:
        The :class:`~repro.sweep.scenarios.Scenario` family — waveform/corner
        variations of the circuit the model was extracted from.  Every
        scenario must share the transient time span so the stimuli stack into
        one batch.
    error_bound:
        Bound for :attr:`ValidationReport.within_bound`; defaults to the
        extraction's bound recorded in the compiled model's metadata.
    sweep_options:
        Forwarded to :func:`repro.sweep.run_sweep` (snapshots are disabled —
        validation only needs waveforms).
    sweep_result:
        Pre-computed sweep of exactly these scenarios, to avoid re-simulating
        (e.g. when the training sweep doubles as the validation reference).
    """
    scenarios = list(scenarios)
    if not scenarios:
        raise ModelError("validate_model needs at least one scenario")
    spans = {(s.transient.t_start, s.transient.t_stop) for s in scenarios}
    if len(spans) > 1:
        raise ModelError(
            f"scenarios span different time windows {sorted(spans)}; "
            "a validation batch shares one grid")

    if sweep_result is None:
        opts = sweep_options or SweepOptions()
        opts = SweepOptions(n_workers=opts.n_workers, capture_snapshots=False,
                            raise_on_error=True)
        sweep_result = run_sweep(scenarios, opts)
    else:
        if sweep_result.names != [s.name for s in scenarios]:
            raise ModelError(
                f"sweep_result covers scenarios {sweep_result.names}, not the "
                f"requested {[s.name for s in scenarios]}; pass the sweep of "
                "exactly these scenarios (same order)")
        if sweep_result.failed:
            raise ModelError(
                "sweep_result contains failed scenarios "
                f"{[r.name for r in sweep_result.failed]}; a validation "
                "reference must have simulated every scenario")
    sim_wall = sum(r.wall_time for r in sweep_result.results)

    (t_start, t_stop), = spans
    times = t_start + model.dt * np.arange(
        int(np.floor((t_stop - t_start) / model.dt)) + 1)

    # Stack each scenario's *input* onto the model grid, serve the batch, and
    # compare against the simulator output resampled onto the same grid.
    # The simulator time axis is strictly increasing but not necessarily
    # uniform — adaptive (LTE-controlled) transients place steps densely on
    # fast transitions and sparsely elsewhere — so both waveforms go through
    # linear interpolation onto the compiled model's uniform ``dt`` before
    # any RMSE is computed (the contract of ``TransientResult.resample``).
    stimuli = np.empty((len(scenarios), times.size))
    reference = np.empty_like(stimuli)
    for row, result in enumerate(sweep_result.results):
        transient = result.transient
        stimuli[row] = np.interp(times, transient.times, transient.inputs[:, 0])
        reference[row] = transient.resample(times)

    model_start = _time.perf_counter()
    served = model.evaluate(stimuli)
    model_wall = _time.perf_counter() - model_start

    errors = batched_waveform_errors(reference, served)
    rows = [ValidationRow(name=scenario.name, n_steps=times.size,
                          rmse=float(errors.rmse[i]),
                          relative_rmse=float(errors.relative_rmse[i]),
                          max_abs_error=float(errors.max_abs_error[i]))
            for i, scenario in enumerate(scenarios)]

    if error_bound is None:
        error_bound = model.error_bound
    return ValidationReport(rows=rows, error_bound=error_bound,
                            sim_wall_time=sim_wall, model_wall_time=model_wall,
                            errors=errors)
