"""Compilation of extracted Hammerstein models into discrete-time kernels.

The analytical model of :mod:`repro.rvf` is the paper's *deployable artifact*:
a cheap surrogate standing in for the full nonlinear circuit.  Evaluating it
through the analytical path, however, still walks Python objects — one
partial-fraction evaluation per branch per sample, one complex scalar
recurrence per branch.  :func:`compile_model` removes every remaining Python
indirection by freezing the model at a fixed sample interval ``dt``:

* each branch's first-order filter is folded into **real-valued recurrence
  coefficients**.  The exact exponential update
  ``y_{n+1} = E y_n + W0 v_n + W1 (v_{n+1}-v_n)`` (see
  :mod:`repro.rvf.timedomain`) with complex ``E = exp(a dt)`` becomes a real
  2x2 rotation-scaling block per branch — two real states advanced with pure
  array arithmetic, no complex dtype on the hot path;
* each branch's **static nonlinear map** ``f_p(u)`` (and the static path
  ``F_0(u)``) is tabulated on a uniform input grid and evaluated by vectorised
  linear interpolation, so serving never touches the analytical
  partial-fraction objects;
* everything lands in a plain :class:`CompiledModel` of NumPy arrays, which
  batch-evaluates thousands of stimuli in lock-step
  (:mod:`repro.runtime.batch`) and serialises losslessly through the model
  registry (:mod:`repro.runtime.registry`).

The compiled kernel reproduces :func:`repro.rvf.timedomain.
simulate_hammerstein` exactly up to the static-table interpolation error,
which shrinks quadratically with ``table_size``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import ModelError
from ..rvf.hammerstein import HammersteinModel, _evaluate_state_function

__all__ = ["CompiledModel", "compile_model"]

#: Serialisation format tag stored with every registry entry.
FORMAT = "compiled-hammerstein-v1"

#: Default number of static-table samples.  4097 = 2**12 + 1 keeps the
#: interpolation error of smooth partial-fraction maps far below the
#: extraction error bounds used in the paper (1e-3).
DEFAULT_TABLE_SIZE = 4097


@dataclass
class CompiledModel:
    """A Hammerstein model frozen at a fixed sample rate, as plain arrays.

    The dynamic part is ``n_states = 2 * n_branches`` real states advanced by

    .. math::

        S'_i = A^{diag}_i S_i + A^{off}_i S_{partner(i)}
               + b^{0r}_i v^r_{\\beta(i)} + b^{0i}_i v^i_{\\beta(i)}
               + b^{1r}_i \\Delta v^r_{\\beta(i)} + b^{1i}_i \\Delta v^i_{\\beta(i)}

    where ``beta(i) = state_branch[i]`` maps states to branches and
    ``v^r/v^i`` are the tabulated real/imaginary parts of the branch drive
    ``f_p(u)``.  The output is ``F_0(u_n) + c^T S_n``.  All arrays are
    read-only inputs of the batch evaluator; none are mutated at serve time.
    """

    #: Fixed sample interval the recurrence was folded at.
    dt: float
    #: Static-table grid: ``u_grid = u_min + du * arange(n_table)``.
    u_min: float
    u_max: float
    #: Tabulated static path ``F_0(u)``, shape ``(n_table,)``.
    static_table: np.ndarray
    #: Tabulated branch drives ``Re f_p(u)`` / ``Im f_p(u)``,
    #: shape ``(n_branches, n_table)``.
    branch_vr: np.ndarray
    branch_vi: np.ndarray
    #: Real recurrence: diagonal and partner (off-diagonal) coefficients,
    #: partner index and owning branch per state, all shape ``(n_states,)``.
    a_diag: np.ndarray
    a_off: np.ndarray
    partner: np.ndarray
    state_branch: np.ndarray
    #: Input weights of the recurrence (see class docstring).
    b0r: np.ndarray
    b0i: np.ndarray
    b1r: np.ndarray
    b1i: np.ndarray
    #: Equilibrium initialisation ``S_0 = init_vr * v^r_0 + init_vi * v^i_0``.
    init_vr: np.ndarray
    init_vi: np.ndarray
    #: Output weights ``c`` (2 for the real part of complex pairs, 1 for real
    #: poles, 0 for imaginary parts).
    c_out: np.ndarray
    #: Book-keeping: names, extraction metadata, provenance.
    input_name: str = "u"
    output_name: str = "y"
    metadata: dict = field(default_factory=dict)

    # ------------------------------------------------------------------ shape
    @property
    def n_branches(self) -> int:
        return int(self.branch_vr.shape[0])

    @property
    def n_states(self) -> int:
        return int(self.a_diag.size)

    @property
    def n_table(self) -> int:
        return int(self.static_table.size)

    @property
    def sample_rate(self) -> float:
        return 1.0 / self.dt

    @property
    def nbytes(self) -> int:
        """In-memory footprint of the array payload (cache-budget accounting).

        This is what the serving layer's byte-budget LRU cache
        (:class:`repro.serve.cache.ModelCache`) charges per resident model;
        the static tables dominate for any realistic ``table_size``.
        """
        return int(sum(array.nbytes for array in self.arrays().values()))

    @property
    def error_bound(self) -> float | None:
        """Extraction error bound recorded at compile time (if any)."""
        bound = self.metadata.get("error_bound")
        return None if bound is None else float(bound)

    # ------------------------------------------------------------- evaluation
    def evaluate(self, inputs: np.ndarray, max_chunk_bytes: int = 256 << 20,
                 out: np.ndarray | None = None) -> np.ndarray:
        """Batched evaluation; delegates to :func:`repro.runtime.batch.evaluate_batch`.

        ``inputs`` is ``(n_stimuli, n_steps)`` (or 1-D for a single stimulus)
        sampled at this model's ``dt``; returns outputs of the same shape.
        ``out`` optionally receives the results in place (the shard
        dataplane's zero-copy path — see :func:`~repro.runtime.batch.
        evaluate_batch`).
        """
        from .batch import evaluate_batch

        return evaluate_batch(self, inputs, max_chunk_bytes=max_chunk_bytes,
                              out=out)

    def time_axis(self, n_steps: int, t_start: float = 0.0) -> np.ndarray:
        """The uniform time grid of an ``n_steps``-sample evaluation."""
        return t_start + self.dt * np.arange(int(n_steps))

    # ----------------------------------------------------------- serialization
    _ARRAY_FIELDS = ("static_table", "branch_vr", "branch_vi", "a_diag", "a_off",
                     "partner", "state_branch", "b0r", "b0i", "b1r", "b1i",
                     "init_vr", "init_vi", "c_out")
    _SCALAR_FIELDS = ("dt", "u_min", "u_max")

    def arrays(self) -> dict[str, np.ndarray]:
        """The array payload (registry ``npz`` content), in canonical order."""
        return {name: getattr(self, name) for name in self._ARRAY_FIELDS}

    def scalars(self) -> dict[str, float | str]:
        """The scalar payload (registry metadata JSON content)."""
        return {"format": FORMAT,
                "dt": self.dt, "u_min": self.u_min, "u_max": self.u_max,
                "input_name": self.input_name, "output_name": self.output_name}

    def describe(self) -> str:
        return (f"compiled model: {self.n_branches} branches / {self.n_states} "
                f"real states, dt={self.dt:.3e}s, static tables of "
                f"{self.n_table} samples on [{self.u_min:.3f}, {self.u_max:.3f}]")


def compile_model(model: HammersteinModel, dt: float,
                  input_range: tuple[float, float],
                  table_size: int = DEFAULT_TABLE_SIZE,
                  metadata: dict | None = None) -> CompiledModel:
    """Fold an extracted Hammerstein model into a :class:`CompiledModel`.

    Parameters
    ----------
    model:
        The analytical model produced by :func:`repro.rvf.extract_rvf_model`.
        Only one-dimensional state estimators (``x = u(t)``, the paper's
        demonstrated configuration) can be compiled: with input delays the
        static maps would need multi-dimensional tables.
    dt:
        Fixed sample interval of the compiled recurrence.  Stimuli served
        through the compiled model must be sampled on this grid.
    input_range:
        ``(u_min, u_max)`` span of the static tables — normally the training
        excursion of the sweep the model was extracted from.  Inputs outside
        the span are clamped to the table edges at serve time (the analytical
        model would extrapolate; a served surrogate should not).
    table_size:
        Number of uniform samples per static table (at least 2).
    metadata:
        Optional extra provenance merged into the compiled model's metadata
        (the extraction's :class:`~repro.rvf.hammerstein.ModelMetadata` is
        always recorded).
    """
    if model.state_dimension != 1:
        raise ModelError(
            "compile_model supports one-dimensional state estimators "
            f"(x = u(t)); got dimension {model.state_dimension}")
    if dt <= 0.0:
        raise ModelError("compile_model: dt must be positive")
    u_min, u_max = float(input_range[0]), float(input_range[1])
    if not np.isfinite(u_min) or not np.isfinite(u_max) or u_max <= u_min:
        raise ModelError(f"invalid input_range ({u_min}, {u_max})")
    table_size = int(table_size)
    if table_size < 2:
        raise ModelError("table_size must be at least 2")

    u_grid = np.linspace(u_min, u_max, table_size)

    # ------------------------------------------------------- static tables
    static_table = np.asarray(model.static_output(u_grid), dtype=float)
    n_branches = model.n_branches
    branch_vr = np.empty((n_branches, table_size))
    branch_vi = np.empty((n_branches, table_size))
    for j, branch in enumerate(model.branches):
        v = _evaluate_state_function(branch.static_function, u_grid)
        branch_vr[j] = v.real
        branch_vi[j] = v.imag

    # -------------------------------------------------- recurrence folding
    n_states = 2 * n_branches
    a_diag = np.empty(n_states)
    a_off = np.empty(n_states)
    partner = np.empty(n_states, dtype=np.intp)
    state_branch = np.empty(n_states, dtype=np.intp)
    b0r = np.empty(n_states)
    b0i = np.empty(n_states)
    b1r = np.empty(n_states)
    b1i = np.empty(n_states)
    init_vr = np.empty(n_states)
    init_vi = np.empty(n_states)
    c_out = np.zeros(n_states)

    for j, branch in enumerate(model.branches):
        expz, w0, w1 = branch.recurrence(dt)
        re, im = 2 * j, 2 * j + 1
        state_branch[re] = state_branch[im] = j
        partner[re], partner[im] = im, re
        a_diag[re] = a_diag[im] = expz.real
        a_off[re], a_off[im] = -expz.imag, expz.imag
        # Re(W v) = Wr vr - Wi vi ; Im(W v) = Wi vr + Wr vi.
        b0r[re], b0i[re] = w0.real, -w0.imag
        b0r[im], b0i[im] = w0.imag, w0.real
        b1r[re], b1i[re] = w1.real, -w1.imag
        b1r[im], b1i[im] = w1.imag, w1.real
        # Equilibrium start y_0 = -v_0 / a.
        w_init = -1.0 / branch.pole
        init_vr[re], init_vi[re] = w_init.real, -w_init.imag
        init_vr[im], init_vi[im] = w_init.imag, w_init.real
        c_out[re] = 2.0 if branch.is_complex_pair else 1.0

    from dataclasses import asdict

    meta: dict = {"extraction": _jsonable_metadata(asdict(model.metadata)),
                  "error_bound": _none_if_nan(model.metadata.error_bound),
                  "dynamic_order": model.dynamic_order,
                  "dc_input": model.dc_input,
                  "dc_output": model.dc_output,
                  "table_size": table_size}
    if metadata:
        meta.update(metadata)

    return CompiledModel(
        dt=float(dt), u_min=u_min, u_max=u_max,
        static_table=static_table, branch_vr=branch_vr, branch_vi=branch_vi,
        a_diag=a_diag, a_off=a_off, partner=partner, state_branch=state_branch,
        b0r=b0r, b0i=b0i, b1r=b1r, b1i=b1i,
        init_vr=init_vr, init_vi=init_vi, c_out=c_out,
        input_name=model.input_name, output_name=model.output_name,
        metadata=meta,
    )


def _none_if_nan(value: float) -> float | None:
    return None if value is None or (isinstance(value, float) and np.isnan(value)) \
        else float(value)


def _jsonable_metadata(metadata: dict) -> dict:
    out = {}
    for key, value in metadata.items():
        if isinstance(value, float):
            out[key] = _none_if_nan(value)
        elif isinstance(value, (bool, int, str, dict, list)) or value is None:
            out[key] = value
        else:
            out[key] = repr(value)
    return out
