"""``python -m repro.checks [paths...]`` — run the REP1xx suite.

Prints one ``path:line: RULE message`` per finding (sorted, grep/editor
friendly) and exits non-zero when anything fired, so CI can gate on it.
"""

from __future__ import annotations

import argparse
from typing import Sequence

from .engine import ALL_RULES, _load_rules, iter_python_files, run_paths

__all__ = ["main"]


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.checks",
        description="Static concurrency-invariant checker (rules REP101-REP106). "
                    "Suppress a deliberate site with "
                    "'# repro: allow[REP10x] <reason>'.")
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories to check "
                             "(default: src/repro)")
    parser.add_argument("--rule", action="append", dest="rules", metavar="REP1xx",
                        help="run only the given rule id (repeatable)")
    parser.add_argument("--list-rules", action="store_true",
                        help="list rule ids and what they enforce, then exit")
    options = parser.parse_args(argv)

    if options.list_rules:
        for rule_id, rule in sorted(_load_rules().items()):
            doc = (rule.__doc__ or "").strip().splitlines()[0]
            print(f"{rule_id}  {doc}")
        return 0

    findings = run_paths(options.paths, only=options.rules)
    for finding in findings:
        print(finding.render())
    n_files = len(iter_python_files(options.paths))
    if findings:
        print(f"\n{len(findings)} finding(s) in {n_files} file(s)")
        return 1
    print(f"clean: {n_files} file(s), {len(ALL_RULES)} rule(s)")
    return 0
