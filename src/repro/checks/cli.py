"""``python -m repro.checks [paths...]`` — run the REP1xx suite.

Prints one ``path:line: RULE message`` per finding (sorted, grep/editor
friendly) and exits non-zero when anything fired, so CI can gate on it.
``--json`` swaps the human format for one machine-readable JSON document
(findings plus summary) on stdout — same exit-code contract — so CI can
annotate pull requests without scraping text.
"""

from __future__ import annotations

import argparse
import json
from typing import Sequence

from .engine import ALL_RULES, _load_rules, iter_python_files, run_paths

__all__ = ["main"]


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.checks",
        description="Static concurrency-invariant checker (rules REP101-REP107). "
                    "Suppress a deliberate site with "
                    "'# repro: allow[REP10x] <reason>'.")
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories to check "
                             "(default: src/repro)")
    parser.add_argument("--rule", action="append", dest="rules", metavar="REP1xx",
                        help="run only the given rule id (repeatable)")
    parser.add_argument("--list-rules", action="store_true",
                        help="list rule ids and what they enforce, then exit")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit one machine-readable JSON document instead "
                             "of the human path:line format (same exit code)")
    options = parser.parse_args(argv)

    if options.list_rules:
        rules = {rule_id: (rule.__doc__ or "").strip().splitlines()[0]
                 for rule_id, rule in sorted(_load_rules().items())}
        if options.as_json:
            print(json.dumps({"rules": rules}, indent=2, sort_keys=True))
        else:
            for rule_id, doc in rules.items():
                print(f"{rule_id}  {doc}")
        return 0

    findings = run_paths(options.paths, only=options.rules)
    n_files = len(iter_python_files(options.paths))
    if options.as_json:
        print(json.dumps({
            "findings": [{"path": f.path, "line": f.line, "rule": f.rule,
                          "message": f.message} for f in findings],
            "n_findings": len(findings),
            "n_files": n_files,
            "n_rules": len(ALL_RULES),
            "clean": not findings,
        }, indent=2, sort_keys=True))
        return 1 if findings else 0
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"\n{len(findings)} finding(s) in {n_files} file(s)")
        return 1
    print(f"clean: {n_files} file(s), {len(ALL_RULES)} rule(s)")
    return 0
