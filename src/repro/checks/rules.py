"""REP101–REP104, REP106 and REP107: AST visitors over one module at a time.

Each rule is a function ``(path, tree, lines) -> [(line, message), ...]``;
the engine applies pragma suppression afterwards, so rules always report
what they see.  The rules encode invariants this repo actually bled for
(see the ROADMAP's "Correctness tooling" section for the war stories):

* REP101 — an ``async def`` body that blocks stalls every connection on
  the gateway's event loop, not just its own.
* REP102 — resolving futures, invoking user callbacks or publishing
  telemetry while holding a lock hands control to foreign code that may
  try to take the same lock (or submit work that does) — instant deadlock.
* REP103 — ``time.time()`` jumps under NTP; a deadline computed from it
  can fire years late or early.  Monotonic clocks only.
* REP104 — every raised error should be catchable as
  :class:`repro.exceptions.ReproError` (Python-contract builtins such as
  ``ValueError``/``KeyError`` excepted); broad handlers must re-raise or
  visibly attribute the failure, never silently swallow it.
* REP106 — locks, brokers and sqlite handles are process-local; shipping
  one to a shard worker pickles a token that is dead on arrival.
* REP107 — ``tracer.span(...)`` not used as a context manager never closes
  (the span is silently lost); span traffic (``span``/``emit``) lexically
  under ``with <lock>:`` publishes telemetry while holding the lock — the
  same hand-control-to-foreign-code hazard REP102 guards for ``publish``.
"""

from __future__ import annotations

import ast
import re
from typing import Sequence

__all__ = ["RULES"]


def _dotted(node: ast.AST) -> str:
    """``a.b.c`` name of a Name/Attribute chain ('' when not a plain chain)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _terminal(node: ast.AST) -> str:
    """Last segment of a Name/Attribute chain ('' otherwise)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


# --------------------------------------------------------------------- REP101

_BLOCKING_DOTTED = {
    "time.sleep", "os.system", "socket.create_connection", "socket.socketpair",
    "subprocess.run", "subprocess.call", "subprocess.check_call",
    "subprocess.check_output", "subprocess.Popen",
}
_BLOCKING_PREFIXES = ("sqlite3.",)
_BLOCKING_METHODS = {"result", "recv", "sendall", "accept"}


def rep101_no_blocking_in_async(path: str, tree: ast.Module,
                                lines: Sequence[str]):
    """No blocking calls inside ``async def`` bodies."""
    # Calls that sit directly under an ``await`` are non-blocking by
    # definition (asyncio.Event.wait, StreamWriter.wait_closed, ...).
    awaited = {id(n.value) for n in ast.walk(tree) if isinstance(n, ast.Await)}
    findings: list[tuple[int, str]] = []
    stack: list[bool] = []  # innermost enclosing function is async?

    def visit(node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            stack.append(isinstance(node, ast.AsyncFunctionDef))
            for child in ast.iter_child_nodes(node):
                visit(child)
            stack.pop()
            return
        if isinstance(node, ast.Call) and stack and stack[-1]:
            dotted = _dotted(node.func)
            attr = _terminal(node.func)
            if dotted in _BLOCKING_DOTTED or dotted.startswith(_BLOCKING_PREFIXES):
                findings.append((node.lineno,
                                 f"blocking call {dotted}() inside async def "
                                 "stalls the event loop"))
            elif isinstance(node.func, ast.Name) and node.func.id == "open":
                findings.append((node.lineno,
                                 "sync file I/O (open) inside async def "
                                 "stalls the event loop"))
            elif isinstance(node.func, ast.Attribute) and attr in _BLOCKING_METHODS:
                findings.append((node.lineno,
                                 f"blocking .{attr}() inside async def "
                                 "stalls the event loop"))
            elif (isinstance(node.func, ast.Attribute) and attr == "wait"
                  and id(node) not in awaited):
                findings.append((node.lineno,
                                 "un-awaited .wait() inside async def blocks "
                                 "the event loop (threading primitive?)"))
        for child in ast.iter_child_nodes(node):
            visit(child)

    visit(tree)
    return findings


# --------------------------------------------------------------------- REP102

_LOCKISH_NAME = re.compile(r"lock|cond|lease|mutex|wakeup|^ready$")
_LOCK_CONSTRUCTORS = {"threading.Lock", "threading.RLock", "threading.Condition"}
_FORBIDDEN_UNDER_LOCK = {"publish", "set_result", "set_exception"}


def _is_lockish(ctx: ast.AST) -> bool:
    if isinstance(ctx, ast.Call):
        return (_dotted(ctx.func) in _LOCK_CONSTRUCTORS
                or _terminal(ctx.func) in ("monitored_lock",
                                           "monitored_condition"))
    term = _terminal(ctx).lstrip("_").lower()
    return bool(term) and _LOCKISH_NAME.search(term) is not None


def rep102_no_publish_under_lock(path: str, tree: ast.Module,
                                 lines: Sequence[str]):
    """No publish / future resolution / user callback under ``with <lock>:``."""
    findings: list[tuple[int, str]] = []
    lock_depth = 0

    def visit(node: ast.AST) -> None:
        nonlocal lock_depth
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # A nested def runs later, not while the lock is held.
            saved, lock_depth = lock_depth, 0
            for child in ast.iter_child_nodes(node):
                visit(child)
            lock_depth = saved
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            lockish = any(_is_lockish(item.context_expr) for item in node.items)
            lock_depth += lockish
            for child in node.body:
                visit(child)
            lock_depth -= lockish
            for item in node.items:
                visit(item)
            return
        if isinstance(node, ast.Call) and lock_depth > 0:
            attr = _terminal(node.func)
            if attr in _FORBIDDEN_UNDER_LOCK:
                findings.append((node.lineno,
                                 f"{attr}() inside a with-lock block hands "
                                 "control to foreign code while holding the "
                                 "lock (deadlock / lock-order hazard)"))
            elif attr.startswith("on_") or attr == "callback":
                findings.append((node.lineno,
                                 f"user callback {attr}() invoked inside a "
                                 "with-lock block"))
        for child in ast.iter_child_nodes(node):
            visit(child)

    visit(tree)
    return findings


# --------------------------------------------------------------------- REP103


def rep103_monotonic_deadlines(path: str, tree: ast.Module,
                               lines: Sequence[str]):
    """``time.time()`` is wall clock; deadlines must use ``time.monotonic()``."""
    findings: list[tuple[int, str]] = []
    # `from time import time [as x]` makes a bare name just as dangerous.
    aliases = {alias.asname or alias.name
               for node in ast.walk(tree) if isinstance(node, ast.ImportFrom)
               and node.module == "time"
               for alias in node.names if alias.name == "time"}
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted(node.func)
        if (dotted.endswith(".time") and dotted.split(".", 1)[0].lstrip("_")
                in ("time",)) or dotted in aliases:
            findings.append((node.lineno,
                             "time.time() is wall clock and jumps under NTP; "
                             "use time.monotonic() for deadlines/latency "
                             "(allow-pragma human-facing timestamps)"))
    return findings


# --------------------------------------------------------------------- REP104

#: Raising these is lazy error handling — there is a repro.exceptions class
#: (or a Python-contract builtin) for every real failure mode.
_FORBIDDEN_RAISES = {"Exception", "BaseException", "RuntimeError",
                     "OSError", "IOError", "EnvironmentError", "SystemError"}
#: Builtins with a language-level contract callers legitimately catch.
_CONTRACT_BUILTINS = {"ValueError", "TypeError", "KeyError", "IndexError",
                      "AttributeError", "NotImplementedError",
                      "AssertionError", "StopIteration", "StopAsyncIteration",
                      "TimeoutError", "KeyboardInterrupt", "SystemExit"}
_BROAD_EXCEPTS = {"Exception", "BaseException"}


def _handler_is_broad(handler: ast.ExceptHandler) -> bool:
    types = []
    if isinstance(handler.type, ast.Tuple):
        types = handler.type.elts
    elif handler.type is not None:
        types = [handler.type]
    return any(_terminal(t) in _BROAD_EXCEPTS for t in types)


def _handler_attributes_error(handler: ast.ExceptHandler) -> bool:
    """Does the broad handler re-raise or visibly attribute the failure?"""
    for node in handler.body:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Raise):
                return True
            if isinstance(sub, ast.Name) and handler.name and \
                    sub.id == handler.name:
                return True
            term = _terminal(sub) if isinstance(sub, (ast.Name,
                                                      ast.Attribute)) else ""
            if term.endswith("Error") or term in ("format_exc",
                                                  "set_exception",
                                                  "print_exc", "exception"):
                return True
    return False


def rep104_exception_hygiene(path: str, tree: ast.Module,
                             lines: Sequence[str]):
    """Raises use the repro.exceptions hierarchy; no silent broad excepts."""
    findings: list[tuple[int, str]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Raise) and node.exc is not None:
            exc = node.exc
            name = _terminal(exc.func) if isinstance(exc, ast.Call) \
                else _terminal(exc)
            if name in _FORBIDDEN_RAISES:
                findings.append((node.lineno,
                                 f"raise {name}: use the repro.exceptions "
                                 "hierarchy so callers can catch ReproError"))
            elif (name and name[0].isupper()
                  and not name.endswith(("Error", "Exit", "Warning"))
                  and name not in _CONTRACT_BUILTINS):
                findings.append((node.lineno,
                                 f"raise {name}: not a repro.exceptions class "
                                 "or a Python-contract builtin"))
        elif isinstance(node, ast.ExceptHandler):
            if node.type is None:
                findings.append((node.lineno,
                                 "bare except: catches SystemExit/"
                                 "KeyboardInterrupt; name the exception"))
            elif _handler_is_broad(node) and not _handler_attributes_error(node):
                findings.append((node.lineno,
                                 "broad except swallows the error silently; "
                                 "re-raise, attribute it to a named error, or "
                                 "allow-pragma the deliberate swallow"))
    return findings


# --------------------------------------------------------------------- REP106

_HANDLE_CONSTRUCTORS = {"threading.Lock", "threading.RLock",
                        "threading.Condition", "threading.Semaphore",
                        "sqlite3.connect"}
_HANDLE_TERMINALS = {"TopicBroker", "monitored_lock", "monitored_condition"}
#: Attribute names that hold process-local handles across this codebase.
#: ``tracer`` wraps the broker, so shipping it is shipping the broker.
_RISKY_ATTRS = {"broker", "telemetry", "tracer", "_lock", "_cond", "_lease",
                "_conn"}
_SHIP_METHODS = {"send", "apply_async", "starmap", "submit_to_worker"}


def rep106_no_handles_to_workers(path: str, tree: ast.Module,
                                 lines: Sequence[str]):
    """Worker payloads must not capture locks, brokers or sqlite handles."""
    tainted: set[str] = set(_RISKY_ATTRS)
    class_has_handles = False
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            ctor = node.value
            if (_dotted(ctor.func) in _HANDLE_CONSTRUCTORS
                    or _terminal(ctor.func) in _HANDLE_TERMINALS):
                for target in node.targets:
                    term = _terminal(target)
                    if term:
                        tainted.add(term)
                    if isinstance(target, ast.Attribute) and \
                            isinstance(target.value, ast.Name) and \
                            target.value.id == "self":
                        class_has_handles = True

    def _tainted_in(expr: ast.AST) -> tuple[int, str] | None:
        if isinstance(expr, ast.Attribute):
            if expr.attr in tainted:
                return expr.lineno, expr.attr
            if isinstance(expr.value, ast.Name):
                # ``obj.attr`` with an untainted attr ships the attribute's
                # value, not the object the attribute hangs off.
                return None
            return _tainted_in(expr.value)
        if isinstance(expr, ast.Name):
            if expr.id in tainted:
                return expr.lineno, expr.id
            if class_has_handles and expr.id == "self":
                return expr.lineno, "self (instance holds lock/broker attrs)"
            return None
        for child in ast.iter_child_nodes(expr):
            hit = _tainted_in(child)
            if hit is not None:
                return hit
        return None

    findings: list[tuple[int, str]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        attr = _terminal(node.func)
        is_ship = (attr == "Process" or attr in _SHIP_METHODS
                   or _dotted(node.func) == "pickle.dumps")
        if not is_ship:
            continue
        payload: list[ast.AST] = list(node.args)
        payload.extend(kw.value for kw in node.keywords)
        for expr in payload:
            hit = _tainted_in(expr)
            if hit is not None:
                findings.append((hit[0],
                                 f"{hit[1]} shipped to a worker via {attr}(); "
                                 "locks/brokers/sqlite handles are "
                                 "process-local and die in pickling"))
                break  # one finding per ship call keeps the signal readable
    return findings


# --------------------------------------------------------------------- REP107

_TRACERISH = re.compile(r"tracer")


def _is_tracerish(node: ast.AST) -> bool:
    """Does a receiver expression look like it holds a span tracer?"""
    term = _terminal(node).lstrip("_").lower()
    return bool(term) and _TRACERISH.search(term) is not None


def rep107_span_discipline(path: str, tree: ast.Module,
                           lines: Sequence[str]):
    """``tracer.span()`` only as a ``with`` context; no span traffic under a lock.

    Two hazards, one rule:

    * an orphan ``tracer.span(...)`` (not the context expression of a
      ``with``) never runs ``__exit__`` — the span silently never closes
      and the trace tree loses a stage with no error anywhere;
    * ``tracer.span(...)`` / ``tracer.emit(...)`` lexically inside a
      ``with <lock>:`` block publishes a ``SpanClosed`` event while the
      lock is held — the same foreign-code re-entrancy hazard REP102
      flags for bare ``publish()``.
    """
    findings: list[tuple[int, str]] = []
    with_items = {id(item.context_expr)
                  for node in ast.walk(tree)
                  if isinstance(node, (ast.With, ast.AsyncWith))
                  for item in node.items}
    lock_depth = 0

    def visit(node: ast.AST) -> None:
        nonlocal lock_depth
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # A nested def runs later, not while the lock is held.
            saved, lock_depth = lock_depth, 0
            for child in ast.iter_child_nodes(node):
                visit(child)
            lock_depth = saved
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            lockish = any(_is_lockish(item.context_expr) for item in node.items)
            lock_depth += lockish
            for child in node.body:
                visit(child)
            lock_depth -= lockish
            for item in node.items:
                visit(item)
            return
        if (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)
                and _is_tracerish(node.func.value)):
            attr = node.func.attr
            if attr == "span" and id(node) not in with_items:
                findings.append((node.lineno,
                                 "tracer.span() must be the context "
                                 "expression of a with statement; an orphan "
                                 "span never closes and is silently lost"))
            if attr in ("span", "emit") and lock_depth > 0:
                findings.append((node.lineno,
                                 f"tracer.{attr}() inside a with-lock block "
                                 "publishes span telemetry while holding the "
                                 "lock (deadlock / lock-order hazard)"))
        for child in ast.iter_child_nodes(node):
            visit(child)

    visit(tree)
    return findings


RULES = {
    "REP101": rep101_no_blocking_in_async,
    "REP102": rep102_no_publish_under_lock,
    "REP103": rep103_monotonic_deadlines,
    "REP104": rep104_exception_hygiene,
    "REP106": rep106_no_handles_to_workers,
    "REP107": rep107_span_discipline,
}
