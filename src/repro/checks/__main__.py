"""Entry point: ``python -m repro.checks [paths...]``."""

import sys

from .cli import main

sys.exit(main())
