"""Dynamic lock sanitizer: order inversions and publish-under-lock at runtime.

The static REP102 rule only sees *lexical* nesting; the dangerous cases are
dynamic — a callback invoked under lock A that takes lock B, while another
thread takes B then A.  ``lockwatch`` catches those on real traffic:

* **opt-in** — ``REPRO_LOCKWATCH=1`` in the environment (or
  :func:`enable` programmatically).  When inactive,
  :func:`monitored_lock` / :func:`monitored_condition` return plain
  :mod:`threading` primitives and :func:`note_publish` returns
  immediately, so production pays one module-level bool check;
* **per-thread acquisition stacks** — every instrumented acquire records
  the edge *(each already-held lock → newly acquired lock)* into a global
  graph keyed by lock *name* (all instances of ``telemetry.subscription``
  are one node: the order contract is between roles, not objects);
* **inversion detection** — acquiring B while holding A when the graph
  already contains (B, A) reports a ``lock-order`` violation with both
  stacks, once per unordered pair;
* **publish-under-lock** — :meth:`TopicBroker.publish
  <repro.telemetry.broker.TopicBroker.publish>` calls :func:`note_publish`;
  publishing while any instrumented lock is held is reported unless the
  call site carries a ``# repro: allow[REP102] <reason>`` pragma within
  two lines (the same pragma syntax the static checker honors, looked up
  via :mod:`linecache` so the justification lives at the site).

Tests make violations fatal: the session-scoped gate in ``tests/conftest``
calls :func:`assert_clean` at teardown whenever the watcher is active.
"""

from __future__ import annotations

import linecache
import os
import sys
import threading
import traceback
from dataclasses import dataclass

__all__ = [
    "Violation", "is_enabled", "enable", "disable", "reset", "isolated",
    "monitored_lock", "monitored_condition", "held", "note_publish",
    "violations", "assert_clean",
]


@dataclass(frozen=True)
class Violation:
    """One runtime invariant breach (kind: 'lock-order' | 'publish-under-lock')."""

    kind: str
    detail: str
    stack: str

    def render(self) -> str:
        return f"[{self.kind}] {self.detail}\n{self.stack}"


# Global state. Guarded by a *plain* lock that is itself never monitored.
_state_lock = threading.Lock()
_held_local = threading.local()
_edges: dict[tuple[str, str], str] = {}      # (first, second) -> sample stack
_reported_pairs: set[frozenset] = set()
_reported_sites: set[tuple[str, int]] = set()
_pragma_cache: dict[tuple[str, int], bool] = {}
_violations: list[Violation] = []
_active = os.environ.get("REPRO_LOCKWATCH", "").strip() not in ("", "0")


def is_enabled() -> bool:
    return _active


def enable(reset_state: bool = True) -> None:
    """Turn the watcher on (tests; prefer REPRO_LOCKWATCH=1 in CI)."""
    global _active
    if reset_state:
        reset()
    _active = True


def disable() -> None:
    global _active
    _active = False


def reset() -> None:
    """Drop the acquisition graph and recorded violations."""
    with _state_lock:
        _edges.clear()
        _reported_pairs.clear()
        _reported_sites.clear()
        _pragma_cache.clear()
        _violations.clear()


class isolated:
    """Context manager: run with a private watcher state, then restore.

    Used by the checker's own tests so a *seeded* inversion does not leak
    into (or wipe) the state the session-level gate is accumulating.
    """

    def __enter__(self) -> "isolated":
        with _state_lock:
            self._saved = (dict(_edges), set(_reported_pairs),
                           set(_reported_sites), dict(_pragma_cache),
                           list(_violations))
        self._was_active = _active
        enable(reset_state=True)
        return self

    def __exit__(self, *exc_info) -> None:
        global _active
        with _state_lock:
            edges, pairs, sites, cache, found = self._saved
            _edges.clear(); _edges.update(edges)
            _reported_pairs.clear(); _reported_pairs.update(pairs)
            _reported_sites.clear(); _reported_sites.update(sites)
            _pragma_cache.clear(); _pragma_cache.update(cache)
            _violations.clear(); _violations.extend(found)
        _active = self._was_active


def _stack() -> list[str]:
    stack = getattr(_held_local, "names", None)
    if stack is None:
        stack = _held_local.names = []
    return stack


def held() -> tuple[str, ...]:
    """Names of instrumented locks the calling thread currently holds."""
    return tuple(_stack())


def _where() -> str:
    return "".join(traceback.format_stack(limit=8)[:-2])


def _note_acquired(name: str) -> None:
    # The held stack must stay correct even while the watcher is toggled
    # off (instrumented locks outlive a disable()); only *recording* stops.
    stack = _stack()
    if stack and _active:
        where = _where()
        with _state_lock:
            for prior in stack:
                if prior == name:
                    continue
                _edges.setdefault((prior, name), where)
                reverse = _edges.get((name, prior))
                pair = frozenset((prior, name))
                if reverse is not None and pair not in _reported_pairs:
                    _reported_pairs.add(pair)
                    _violations.append(Violation(
                        "lock-order",
                        f"acquired {name!r} while holding {prior!r}, but the "
                        f"opposite order {name!r} -> {prior!r} was also "
                        "observed; first-seen opposite-order stack:\n"
                        + reverse,
                        where))
    stack.append(name)


def _note_released(name: str) -> None:
    stack = _stack()
    # Release order may differ from acquisition order; drop the newest entry.
    for i in range(len(stack) - 1, -1, -1):
        if stack[i] == name:
            del stack[i]
            return


def _site_allowed(filename: str, lineno: int) -> bool:
    """Does the publish call site carry an allow[REP102] pragma nearby?"""
    key = (filename, lineno)
    cached = _pragma_cache.get(key)
    if cached is None:
        cached = any(
            "repro: allow[" in line and "REP102" in line
            for line in (linecache.getline(filename, n)
                         for n in range(max(1, lineno - 2), lineno + 3)))
        with _state_lock:
            _pragma_cache[key] = cached
    return cached


def note_publish(depth: int = 1) -> None:
    """Called by ``TopicBroker.publish``; flags publishing under a lock."""
    if not _active:
        return
    stack = _stack()
    if not stack:
        return
    frame = sys._getframe(depth)
    # Attribute the publish to the broker's *caller*, where the pragma lives.
    caller = frame.f_back or frame
    site = (caller.f_code.co_filename, caller.f_lineno)
    if _site_allowed(*site):
        return
    with _state_lock:
        if site in _reported_sites:
            return
        _reported_sites.add(site)
        _violations.append(Violation(
            "publish-under-lock",
            f"TopicBroker.publish at {site[0]}:{site[1]} while holding "
            f"{list(stack)!r}; publish hands control to subscriber wakeups — "
            "move it outside the lock or allow-pragma the ordering contract",
            _where()))


def violations() -> list[Violation]:
    with _state_lock:
        return list(_violations)


def assert_clean() -> None:
    """Raise AssertionError listing every recorded violation (test gate)."""
    found = violations()
    if found:
        raise AssertionError(
            f"lockwatch recorded {len(found)} violation(s):\n\n"
            + "\n\n".join(v.render() for v in found))


# ------------------------------------------------------- instrumented locks


class _WatchedLock:
    """A ``threading.Lock`` that reports acquisitions to the watcher."""

    __slots__ = ("name", "_raw")

    def __init__(self, name: str) -> None:
        self.name = name
        self._raw = threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        ok = self._raw.acquire(blocking, timeout)
        if ok:
            _note_acquired(self.name)
        return ok

    def release(self) -> None:
        _note_released(self.name)
        self._raw.release()

    def locked(self) -> bool:
        return self._raw.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"<WatchedLock {self.name!r} locked={self._raw.locked()}>"


class _WatchedCondition:
    """A ``threading.Condition`` whose lock reports to the watcher.

    When built over an existing :class:`_WatchedLock` (the
    ``Condition(self._lock)`` sharing pattern in the server), it adopts
    that lock's *name* so both entry points count as the same graph node.
    """

    __slots__ = ("name", "_cond")

    def __init__(self, name: str, lock=None) -> None:
        if isinstance(lock, _WatchedLock):
            self.name = lock.name
            self._cond = threading.Condition(lock._raw)
        else:
            self.name = name
            self._cond = threading.Condition(lock)

    def acquire(self, *args) -> bool:
        ok = self._cond.acquire(*args)
        if ok:
            _note_acquired(self.name)
        return ok

    def release(self) -> None:
        _note_released(self.name)
        self._cond.release()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()

    def wait(self, timeout: float | None = None) -> bool:
        # The condition drops the lock while waiting: reflect that in the
        # held stack or every waiter would look like a lock-order cycle.
        _note_released(self.name)
        try:
            return self._cond.wait(timeout)
        finally:
            _note_acquired(self.name)

    def wait_for(self, predicate, timeout: float | None = None):
        _note_released(self.name)
        try:
            return self._cond.wait_for(predicate, timeout)
        finally:
            _note_acquired(self.name)

    def notify(self, n: int = 1) -> None:
        self._cond.notify(n)

    def notify_all(self) -> None:
        self._cond.notify_all()

    def __repr__(self) -> str:
        return f"<WatchedCondition {self.name!r}>"


def monitored_lock(name: str):
    """A lock for the serving stack: plain when off, instrumented when on."""
    return _WatchedLock(name) if _active else threading.Lock()


def monitored_condition(name: str, lock=None):
    """A condition variable, instrumented when the watcher is active.

    ``lock`` may be a plain lock, a :class:`_WatchedLock` (shared-lock
    pattern: the condition adopts its name/node) or ``None``.
    """
    if _active:
        return _WatchedCondition(name, lock)
    if isinstance(lock, _WatchedLock):  # enabled after the lock was made
        lock = lock._raw
    return threading.Condition(lock)
