"""Rule engine: parse files, run REP1xx rules, honor ``allow`` pragmas.

A *rule* is a callable ``(path, tree, lines) -> list[(line, message)]``
registered in :data:`ALL_RULES` under its ``REP1xx`` id.  The engine owns
everything rule-agnostic: reading and parsing files, walking directories,
and the suppression pragma

.. code-block:: python

    risky_call()  # repro: allow[REP102] publish ordering contract, see docstring

A pragma suppresses the named rule(s) on its own line; a *comment-only*
pragma line additionally covers the next source line (for statements too
long to share a line with their justification).  The reason text is
mandatory — an allow without a why is itself reported (as REP100, the
engine's own rule id, also used for files that fail to parse).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Sequence

__all__ = ["Finding", "Pragmas", "ALL_RULES", "check_source", "run_paths"]

#: The engine's own rule id: parse failures and malformed pragmas.
ENGINE_RULE = "REP100"

_PRAGMA_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<rules>REP\d{3}(?:\s*,\s*REP\d{3})*)\]"
    r"[ \t]*(?P<reason>.*)")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


class Pragmas:
    """Per-file map of ``# repro: allow[...]`` suppressions."""

    def __init__(self, lines: Sequence[str]) -> None:
        #: line number -> set of suppressed rule ids
        self._allowed: dict[int, set[str]] = {}
        #: malformed pragmas, reported by the engine as findings
        self.errors: list[tuple[int, str]] = []
        for lineno, text in enumerate(lines, start=1):
            match = _PRAGMA_RE.search(text)
            if match is None:
                continue
            rules = {r.strip() for r in match.group("rules").split(",")}
            if not match.group("reason").strip():
                self.errors.append(
                    (lineno, "allow pragma must give a reason: "
                     "# repro: allow[REP1xx] <why this site is exempt>"))
                continue
            self._allowed.setdefault(lineno, set()).update(rules)
            if text.lstrip().startswith("#"):
                # A comment-only pragma line covers the statement below it.
                self._allowed.setdefault(lineno + 1, set()).update(rules)

    def allows(self, rule: str, line: int) -> bool:
        return rule in self._allowed.get(line, ())


Rule = Callable[[str, ast.Module, Sequence[str]], "list[tuple[int, str]]"]

#: rule id -> rule callable; populated by :func:`_load_rules`.
ALL_RULES: dict[str, Rule] = {}


def _load_rules() -> dict[str, Rule]:
    if not ALL_RULES:
        from . import registry_rules, rules

        ALL_RULES.update(rules.RULES)
        ALL_RULES.update(registry_rules.RULES)
    return ALL_RULES


def check_source(path: str, source: str,
                 only: Iterable[str] | None = None) -> list[Finding]:
    """Run the rule suite over one already-read source string.

    ``only`` restricts to a subset of rule ids (used by the checker's own
    tests to exercise one rule per fixture).
    """
    findings: list[Finding] = []
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(path, exc.lineno or 1, ENGINE_RULE,
                        f"file does not parse: {exc.msg}")]
    lines = source.splitlines()
    pragmas = Pragmas(lines)
    for lineno, message in pragmas.errors:
        findings.append(Finding(path, lineno, ENGINE_RULE, message))
    for rule_id, rule in sorted(_load_rules().items()):
        if only is not None and rule_id not in only:
            continue
        for lineno, message in rule(path, tree, lines):
            if not pragmas.allows(rule_id, lineno):
                findings.append(Finding(path, lineno, rule_id, message))
    return sorted(findings)


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.update(p for p in path.rglob("*.py")
                       if "__pycache__" not in p.parts)
        elif path.suffix == ".py":
            out.add(path)
    return sorted(out)


def run_paths(paths: Iterable[str | Path],
              only: Iterable[str] | None = None) -> list[Finding]:
    """Check every ``.py`` file under ``paths``; returns sorted findings."""
    findings: list[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(
            check_source(str(path), path.read_text(encoding="utf-8"), only=only))
    return sorted(findings)
