"""Machine-checked concurrency invariants for the serving stack.

Two halves, one contract:

* the **static rule engine** (:mod:`repro.checks.engine`,
  :mod:`repro.checks.rules`, :mod:`repro.checks.registry_rules`) walks the
  source tree with :mod:`ast` and enforces the hard-won REP1xx invariants —
  run it with ``python -m repro.checks [paths]``;
* the **dynamic lock sanitizer** (:mod:`repro.checks.lockwatch`) wraps the
  serve/telemetry locks when ``REPRO_LOCKWATCH=1`` and fails tests on
  lock-order inversions or ``publish``-under-lock observed on real traffic.

Rules (suppress a deliberate site with ``# repro: allow[REP10x] <reason>``):

========  =============================================================
REP101    no blocking calls inside ``async def`` bodies
REP102    no publish / future resolution / user callback under a lock
REP103    deadlines and latency windows use ``time.monotonic()``
REP104    raises use the ``repro.exceptions`` hierarchy; no silent
          ``except Exception`` swallows
REP105    telemetry events and gateway frame codes registered once,
          schema-versioned, encoder/decoder symmetric
REP106    shard-worker payloads must not capture locks / brokers /
          sqlite handles
REP107    ``tracer.span()`` only as a ``with`` context manager; no span
          traffic lexically under a ``with <lock>:`` block
========  =============================================================

This ``__init__`` stays import-light on purpose: the telemetry broker
imports :mod:`~repro.checks.lockwatch` on its hot path, and must not drag
the AST engine in with it.
"""

from __future__ import annotations

__all__ = ["Finding", "run_paths", "check_source", "main"]


def __getattr__(name):  # lazy re-exports; keeps `import repro.checks` light
    if name in ("Finding", "run_paths", "check_source"):
        from . import engine

        return getattr(engine, name)
    if name == "main":
        from .cli import main

        return main
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
