"""REP105: registries must be single-sourced, versioned and symmetric.

Two registries matter in this stack and both have the same failure mode —
a constant added on one side of a protocol and forgotten on the other:

* **telemetry events** (:mod:`repro.telemetry.events`): every
  ``TelemetryEvent`` subclass must be ``@register_event``-decorated exactly
  once and be a frozen dataclass, and the module must carry a
  ``SCHEMA_VERSION`` so recorded runs are replayable across versions;
* **gateway frame codes** (:mod:`repro.gateway.protocol`): every frame
  type compared against in ``decode_payload`` must be produced by an
  encoder, every frame type packed into a frame header must be decoded,
  and no two frame constants may share a wire value.

The rule fires only on modules that *look like* one of those registries
(define a ``TelemetryEvent`` subclass / a ``decode_payload`` function), so
ordinary modules pay nothing.
"""

from __future__ import annotations

import ast
from typing import Sequence

__all__ = ["RULES"]


# ------------------------------------------------------------ event registry


def _decorator_name(node: ast.AST) -> str:
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _is_frozen_dataclass(dec: ast.AST) -> bool:
    if isinstance(dec, ast.Name):
        return False  # bare @dataclass: mutable events would break replay
    if isinstance(dec, ast.Call) and _decorator_name(dec) == "dataclass":
        return any(kw.arg == "frozen" and
                   isinstance(kw.value, ast.Constant) and kw.value.value is True
                   for kw in dec.keywords)
    return False


def _check_event_registry(tree: ast.Module) -> list[tuple[int, str]]:
    event_classes = [
        node for node in ast.walk(tree) if isinstance(node, ast.ClassDef)
        and any(_terminal(base) == "TelemetryEvent" for base in node.bases)
    ]
    if not event_classes:
        return []
    findings: list[tuple[int, str]] = []
    has_schema = any(
        isinstance(node, ast.Assign)
        and any(isinstance(t, ast.Name) and t.id == "SCHEMA_VERSION"
                for t in node.targets)
        for node in tree.body)
    if not has_schema:
        findings.append((event_classes[0].lineno,
                         "event registry module must define SCHEMA_VERSION "
                         "so recorded runs stay replayable"))
    seen: dict[str, int] = {}
    for cls in event_classes:
        n_register = sum(1 for dec in cls.decorator_list
                         if _decorator_name(dec) == "register_event")
        if n_register != 1:
            findings.append((cls.lineno,
                             f"event {cls.name} must be @register_event-"
                             f"decorated exactly once (found {n_register})"))
        elif not any(_is_frozen_dataclass(dec) for dec in cls.decorator_list):
            findings.append((cls.lineno,
                             f"event {cls.name} must be "
                             "@dataclass(frozen=True): events are shared "
                             "across threads and recorded verbatim"))
        elif cls.name in seen:
            findings.append((cls.lineno,
                             f"event {cls.name} registered twice (first at "
                             f"line {seen[cls.name]}): topic names must be "
                             "unique"))
        seen.setdefault(cls.name, cls.lineno)
    return findings


# ------------------------------------------------------------- frame symmetry


def _terminal(node: ast.AST) -> str:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _int_constants(tree: ast.Module) -> dict[str, tuple[int, int]]:
    """UPPERCASE module constants -> (value, lineno); handles tuple unpack."""
    out: dict[str, tuple[int, int]] = {}
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            names: list[ast.AST] = [target]
            values: list[ast.AST] = [node.value]
            if isinstance(target, ast.Tuple) and \
                    isinstance(node.value, ast.Tuple) and \
                    len(target.elts) == len(node.value.elts):
                names, values = list(target.elts), list(node.value.elts)
            for name, value in zip(names, values):
                if isinstance(name, ast.Name) and name.id.isupper() and \
                        isinstance(value, ast.Constant) and \
                        isinstance(value.value, int) and \
                        not isinstance(value.value, bool):
                    out[name.id] = (value.value, name.lineno)
    return out


def _check_frame_symmetry(tree: ast.Module) -> list[tuple[int, str]]:
    decoder = next((node for node in ast.walk(tree)
                    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and node.name == "decode_payload"), None)
    if decoder is None:
        return []
    findings: list[tuple[int, str]] = []
    constants = _int_constants(tree)

    # D: frame-type names the decoder dispatches on (msg_type == NAME).
    decoded: dict[str, int] = {}
    for node in ast.walk(decoder):
        if isinstance(node, ast.Compare) and \
                isinstance(node.left, ast.Name) and \
                node.left.id == "msg_type" and \
                all(isinstance(op, ast.Eq) for op in node.ops):
            for comp in node.comparators:
                name = _terminal(comp)
                if name and name.isupper():
                    decoded.setdefault(name, node.lineno)

    # P: names packed as the frame-type slot of a header (3rd pack arg);
    # E: every UPPERCASE frame name referenced inside an encode_* function.
    packed: dict[str, int] = {}
    encoded: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr == "pack" and len(node.args) >= 3:
            name = _terminal(node.args[2])
            if name and name.isupper():
                packed.setdefault(name, node.lineno)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and \
                node.name.startswith("encode_"):
            encoded.update(sub.id for sub in ast.walk(node)
                           if isinstance(sub, ast.Name) and sub.id.isupper())

    for name, lineno in decoded.items():
        if name not in packed and name not in encoded:
            findings.append((lineno,
                             f"frame type {name} is decoded but no encoder "
                             "produces it (asymmetric protocol)"))
    for name, lineno in packed.items():
        if name not in decoded:
            findings.append((lineno,
                             f"frame type {name} is encoded but "
                             "decode_payload never handles it "
                             "(asymmetric protocol)"))

    by_value: dict[int, str] = {}
    for name in sorted(set(decoded) | set(packed)):
        if name not in constants:
            continue
        value, lineno = constants[name]
        if value in by_value:
            findings.append((lineno,
                             f"frame types {by_value[value]} and {name} share "
                             f"wire value {value}: codes must be unique"))
        else:
            by_value[value] = name
    return findings


def rep105_registry_symmetry(path: str, tree: ast.Module,
                             lines: Sequence[str]):
    """Event/frame registries: registered once, versioned, symmetric."""
    return _check_event_registry(tree) + _check_frame_symmetry(tree)


RULES = {"REP105": rep105_registry_symmetry}
