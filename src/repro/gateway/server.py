"""Asyncio TCP front-end over a :class:`~repro.serve.server.ModelServer`.

The :class:`Gateway` owns one event loop on a dedicated thread and speaks
the length-prefixed binary protocol of :mod:`repro.gateway.protocol`.  Each
request frame is validated and submitted into the model server's
micro-batching scheduler; the per-request future's completion is bounced
back onto the event loop, which writes the result (or error) frame to the
connection that asked.  Because replies are matched by request id, a single
connection can keep hundreds of requests in flight across many models — the
per-model dispatch lanes answer them in whatever order batches complete.

Admission control and backpressure, all from the serving policy:

* ``max_connections`` — connections beyond the cap are refused with a named
  error frame (code ``E_CONNECTION_LIMIT``) and closed, never buffered;
* ``max_inflight_per_conn`` — a connection at its in-flight cap simply stops
  being **read** until replies drain.  The TCP window then pushes back on
  the client; the gateway never buffers an unbounded backlog, and the cap
  also bounds each connection's outgoing reply queue;
* ``max_frame_bytes`` — an oversized length prefix fails the connection with
  a named error before any of the frame is read into memory.

Failure isolation: a malformed frame whose request id is readable fails only
that request (error frame, connection lives); a frame the stream cannot be
re-synchronised after (bad magic, truncated or oversized header) fails only
that connection (error frame with the ``request_id == 0`` connection-fatal
sentinel, then close).  The model server, its dispatch lanes, and every
other connection keep serving either way.

Observability: a connection can also subscribe to push telemetry —
``STATS_SUBSCRIBE`` starts periodic ``STATS`` frames (snapshots of
``ServeStats.as_dict()`` plus the gateway counters) and ``EVENTS_SUBSCRIBE``
streams the model server's broker events as ``EVENT`` frames.  Telemetry
frames share the connection's ``max_inflight_per_conn`` slot budget: at the
cap a stats tick is skipped and an events pump parks until a written reply
frees a slot (its broker subscription keeps absorbing events, dropping
oldest when full), so a slow telemetry consumer throttles only its own
stream.  The gateway itself publishes ``ConnectionOpened`` /
``ConnectionClosed``, ``ProtocolError`` and ``ChunkStreamError`` events to
the same broker, and — when the server's span tracer is live — contributes
``gateway_decode`` / ``gateway_encode`` / ``gateway_write`` spans to each
sampled request's trace (the trace id rides the request future).
"""

from __future__ import annotations

import asyncio
import threading
import time

from ..exceptions import GatewayError, ServeError, ServerClosedError
from ..serve.server import ModelServer
from ..serve.stats import GatewayCounters
from ..telemetry.events import (ChunkStreamError, ConnectionClosed,
                                ConnectionOpened, ProtocolError)
from . import protocol

__all__ = ["Gateway"]


#: Protocol-error frames a connection may have queued at once; a peer
#: flooding malformed frames without reading its errors is paused (its
#: socket stops being read) once these slots are taken.
ERROR_FRAME_SLOTS = 4


class _Connection:
    """Loop-side state of one accepted connection."""

    __slots__ = ("writer", "outgoing", "inflight", "error_slots",
                 "reads_resumed", "alive", "assembler", "peer", "pumps",
                 "slots_freed", "n_requests")

    def __init__(self, writer: asyncio.StreamWriter,
                 max_request_samples: int) -> None:
        self.writer = writer
        peername = writer.get_extra_info("peername")
        #: ``host:port`` of the client, for the connection-scoped telemetry
        #: events (falls back to ``"?"`` on transports without a peername).
        self.peer = (f"{peername[0]}:{peername[1]}"
                     if isinstance(peername, (tuple, list))
                     and len(peername) >= 2 else "?")
        #: Telemetry pump tasks (stats/events subscriptions) of this
        #: connection; cancelled at teardown before the writer sentinel.
        self.pumps: list[asyncio.Task] = []
        #: Set whenever a written reply frees an in-flight slot — how an
        #: events pump parked at the cap learns it can enqueue again
        #: (separate from ``reads_resumed`` so pumps and the read loop never
        #: steal each other's wake-ups).
        self.slots_freed = asyncio.Event()
        #: Request frames admitted into the model server over this
        #: connection's lifetime (reported by its ConnectionClosed event).
        self.n_requests = 0
        #: Reply frames waiting for the writer task.  The queue object is
        #: unbounded but its occupancy is capped structurally: request
        #: replies by the in-flight accounting (a slot frees only once its
        #: reply is written), error frames by :data:`ERROR_FRAME_SLOTS`.
        self.outgoing: asyncio.Queue = asyncio.Queue()
        self.inflight = 0
        self.error_slots = asyncio.Semaphore(ERROR_FRAME_SLOTS)
        #: Set when a written reply drains the connection below its
        #: in-flight cap.
        self.reads_resumed = asyncio.Event()
        self.alive = True
        #: Reassembles this connection's streaming (chunked) requests.  Its
        #: buffering is bounded by the policy's per-request sample limit —
        #: a stream declaring more is rejected on its first chunk.
        self.assembler = protocol.ChunkAssembler(
            max_samples=max_request_samples)


class Gateway:
    """TCP front-end: remote clients → micro-batching model server.

    Parameters
    ----------
    server:
        The :class:`~repro.serve.server.ModelServer` requests are submitted
        into (the gateway does not own it — closing the gateway leaves the
        server serving in-process callers).
    host / port:
        Bind address.  ``port=0`` (the default) picks a free port; the bound
        port is available as :attr:`port` after :meth:`start`.

    Use as a context manager, or call :meth:`start` / :meth:`close`::

        with ModelServer(registry, policy) as server:
            with Gateway(server).start() as gateway:
                client = GatewayClient(*gateway.address)
    """

    def __init__(self, server: ModelServer, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self._server = server
        self.policy = server.policy
        self.host = host
        self.port = int(port)          # rebound to the real port on start()
        self.counters = GatewayCounters()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        self._shutdown: asyncio.Event | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._closed = False

    # ------------------------------------------------------------- lifecycle
    def start(self) -> "Gateway":
        """Bind, start serving on a dedicated event-loop thread, return self."""
        if self._closed:
            raise GatewayError(
                f"gateway at {self.host}:{self.port} is closed; create a new "
                "Gateway instead of restarting a closed one")
        if self._thread is not None:
            return self
        # A retried start() (e.g. after a failed bind) must not observe the
        # previous attempt's readiness flag or error.
        self._started.clear()
        self._startup_error = None
        self._thread = threading.Thread(
            target=self._thread_main, name="repro-gateway", daemon=True)
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            self._thread.join()
            self._thread = None
            raise GatewayError(
                f"gateway failed to bind {self.host}:{self.port}: "
                f"{self._startup_error!r}")
        return self

    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` the gateway is serving on."""
        return (self.host, self.port)

    def close(self) -> None:
        """Stop accepting, drop open connections, stop the loop (idempotent).

        The model server is left running; in-flight requests still resolve
        server-side, but replies to dropped connections go nowhere.  After
        ``close()`` the listening socket is gone — new client connects are
        refused by the OS, which clients surface as a named
        :class:`~repro.exceptions.GatewayError`.
        """
        if self._closed:
            return
        self._closed = True
        loop, shutdown = self._loop, self._shutdown
        if loop is not None and shutdown is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(shutdown.set)
            except RuntimeError:
                pass                      # loop already torn down
        if self._thread is not None:
            self._thread.join(timeout=30.0)

    def __enter__(self) -> "Gateway":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def stats(self) -> dict:
        """Connection/frame counters plus the bind address."""
        stats = self.counters.as_dict()
        stats["address"] = f"{self.host}:{self.port}"
        return stats

    @property
    def telemetry(self):
        """The model server's broker — the gateway publishes there too."""
        return self._server.telemetry

    # ------------------------------------------------------------ event loop
    def _thread_main(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:   # noqa: BLE001 - surfaced via start()
            self._startup_error = exc
        finally:
            self._started.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        try:
            server = await asyncio.start_server(
                self._accept, self.host, self.port)
        except OSError as exc:
            self._startup_error = exc
            return
        self.port = server.sockets[0].getsockname()[1]
        self._started.set()
        async with server:
            await self._shutdown.wait()
            for task in list(self._conn_tasks):
                task.cancel()
            if self._conn_tasks:
                await asyncio.gather(*self._conn_tasks,
                                     return_exceptions=True)

    async def _accept(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        try:
            await self._serve_connection(reader, writer)
        except asyncio.CancelledError:
            pass
        finally:
            self._conn_tasks.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        counters = self.counters
        if counters.n_open_connections >= self.policy.max_connections:
            counters.n_rejected_connections += 1
            writer.write(protocol.encode_error(
                0, protocol.E_CONNECTION_LIMIT,
                f"gateway connection limit reached: "
                f"ServePolicy.max_connections="
                f"{self.policy.max_connections} connection(s) already open"))
            try:
                await writer.drain()
            except (ConnectionError, OSError):
                pass
            return
        counters.n_connections += 1
        counters.n_open_connections += 1
        conn = _Connection(writer, self.policy.max_request_samples)
        if self.telemetry:
            self.telemetry.publish(ConnectionOpened(peer=conn.peer))
        writer_task = asyncio.ensure_future(self._write_loop(conn))
        try:
            await self._read_loop(reader, conn)
        finally:
            conn.alive = False
            # Stop the telemetry pumps before the writer sentinel: a pump
            # that survived it could enqueue frames nobody will ever write.
            for pump in conn.pumps:
                pump.cancel()
            if conn.pumps:
                await asyncio.gather(*conn.pumps, return_exceptions=True)
            # Chunk series still streaming at disconnect never completed:
            # account them as chunk-stream failures (the client is gone, so
            # no error frame — just the counter and the event).
            n_abandoned = len(conn.assembler)
            if n_abandoned:
                counters.n_chunk_stream_errors += n_abandoned
                if self.telemetry:
                    self.telemetry.publish(ChunkStreamError(
                        peer=conn.peer,
                        detail=f"{n_abandoned} chunk stream(s) abandoned "
                               "at disconnect"))
            if self.telemetry:
                self.telemetry.publish(ConnectionClosed(
                    peer=conn.peer, n_requests=conn.n_requests))
            # Let queued replies flush, then stop the writer — but never
            # wait out a peer that stalled its reads (drain() would block
            # forever); cancel the writer instead.
            conn.outgoing.put_nowait(None)
            try:
                await asyncio.wait_for(writer_task, timeout=5.0)
            except asyncio.TimeoutError:
                writer_task.cancel()
                try:
                    await writer_task
                except asyncio.CancelledError:
                    pass
            except asyncio.CancelledError:
                writer_task.cancel()
            counters.n_open_connections -= 1

    async def _read_loop(self, reader: asyncio.StreamReader,
                         conn: _Connection) -> None:
        counters = self.counters
        while True:
            if not conn.alive:             # writer died: stop serving reads
                return
            # Backpressure: at the in-flight cap, stop reading this socket
            # until a reply drains it below the cap (replies count as
            # drained once written to the wire).
            while conn.inflight >= self.policy.max_inflight_per_conn:
                conn.reads_resumed.clear()
                await conn.reads_resumed.wait()
                if not conn.alive:
                    return
            try:
                head = await reader.readexactly(protocol.LENGTH_PREFIX.size)
            except (asyncio.IncompleteReadError, ConnectionError, OSError):
                return                      # client went away
            (length,) = protocol.LENGTH_PREFIX.unpack(head)
            if length > self.policy.max_frame_bytes:
                counters.n_protocol_errors += 1
                if self.telemetry:
                    self.telemetry.publish(ProtocolError(
                        peer=conn.peer, code=protocol.E_FRAME_TOO_LARGE))
                await self._enqueue(conn, protocol.encode_error(
                    0, protocol.E_FRAME_TOO_LARGE,
                    f"frame of {length} bytes exceeds "
                    f"ServePolicy.max_frame_bytes="
                    f"{self.policy.max_frame_bytes}; closing this "
                    "connection (the frame was not read)"))
                return
            try:
                payload = await reader.readexactly(length)
            except (asyncio.IncompleteReadError, ConnectionError, OSError):
                return                      # truncated mid-frame: client died
            counters.n_frames_in += 1
            t_decode = time.monotonic()
            try:
                message = protocol.decode_payload(payload)
            except protocol.FrameError as err:
                if not await self._frame_error(conn, err):
                    return
                continue
            if isinstance(message, protocol.RequestChunk):
                # Streaming request: absorb the chunk; submit only once
                # the series completes.  An inconsistent chunk raises —
                # attributed to its request id, so it fails exactly the
                # offending stream, never the connection — and is counted
                # as a chunk-stream failure distinct from garbled frames.
                try:
                    message = conn.assembler.feed(message)
                except protocol.FrameError as err:
                    counters.n_chunk_stream_errors += 1
                    if self.telemetry:
                        self.telemetry.publish(ChunkStreamError(
                            peer=conn.peer, request_id=err.request_id,
                            detail=str(err)))
                    if not await self._frame_error(conn, err,
                                                   publish=False):
                        return
                    continue
                if message is None:
                    continue
            elif isinstance(message, protocol.StatsSubscribe):
                self._start_stats_pump(conn, message)
                continue
            elif isinstance(message, protocol.EventsSubscribe):
                self._start_events_pump(conn, message)
                continue
            elif not isinstance(message, protocol.Request):
                err = protocol.FrameError(
                    "clients send request or subscribe frames only",
                    request_id=getattr(message, "request_id", 0),
                    code=protocol.E_BAD_FRAME)
                if not await self._frame_error(conn, err):
                    return
                continue
            await self._submit(conn, message, t_decode,
                               time.monotonic() - t_decode)

    async def _frame_error(self, conn: _Connection,
                           err: protocol.FrameError,
                           publish: bool = True) -> bool:
        """Account and answer one malformed frame.

        Returns ``False`` when the error is connection-fatal (no request id
        — the stream can't be trusted to be in sync any more) so the read
        loop fails this connection, nothing else.  ``publish=False`` skips
        the generic ``ProtocolError`` event for errors the caller already
        published under a more specific type.
        """
        self.counters.n_protocol_errors += 1
        code = err.code or protocol.E_BAD_FRAME
        if publish and self.telemetry:
            self.telemetry.publish(ProtocolError(
                peer=conn.peer, code=code, request_id=err.request_id))
        await self._enqueue(
            conn, protocol.encode_error(err.request_id, code, str(err)))
        return err.request_id != 0

    async def _submit(self, conn: _Connection, message: protocol.Request,
                      t_decode: float, decode_s: float) -> None:
        counters = self.counters
        try:
            future = self._server.submit(message.key, message.samples)
        except ServeError as exc:
            counters.n_rejected_requests += 1
            code = (protocol.E_SERVER_CLOSED
                    if isinstance(exc, ServerClosedError)
                    else protocol.E_BAD_REQUEST)
            await self._enqueue(conn, protocol.encode_error(
                message.request_id, code, str(exc)))
            return
        # The trace id exists only once the server admitted the request, so
        # the decode span is materialised retroactively from its timestamps.
        tracer = self._server.tracer
        if tracer:
            trace_id = getattr(future, "trace_id", 0)
            if trace_id and tracer.sampled(trace_id):
                tracer.emit("gateway_decode", trace_id, t_decode, decode_s,
                            sampled=True)
        counters.n_requests += 1
        conn.n_requests += 1
        conn.inflight += 1
        request_id = message.request_id
        dtype = message.dtype
        future.add_done_callback(
            lambda fut: self._reply_threadsafe(conn, request_id, dtype, fut))

    # --------------------------------------------------------------- replies
    def _reply_threadsafe(self, conn: _Connection, request_id: int,
                          dtype: int, future) -> None:
        """Future callback — runs on a dispatch-lane thread.

        Must never raise into the lane's batch resolution: a gateway torn
        down mid-flight silently drops the reply instead.
        """
        loop = self._loop
        try:
            if loop is None or loop.is_closed():
                return
            loop.call_soon_threadsafe(self._reply, conn, request_id, dtype,
                                      future)
        except RuntimeError:
            pass                           # loop shut down under us

    def _reply(self, conn: _Connection, request_id: int, dtype: int,
               future) -> None:
        if not conn.alive:
            # The read loop is gone; its in-flight accounting with it.
            return
        # One sampling decision covers the encode span here and the write
        # span downstream: an unsampled reply rides the queue with trace
        # id 0, so the write loop's guard is a single integer test.
        tracer = self._server.tracer
        trace_id = getattr(future, "trace_id", 0) if tracer else 0
        if trace_id and not tracer.sampled(trace_id):
            trace_id = 0
        if future.cancelled():
            frames = [protocol.encode_error(
                request_id, protocol.E_INTERNAL, "request cancelled")]
        else:
            exc = future.exception()
            if exc is not None:
                # An admitted request that failed server-side: not a
                # rejection (those are counted at submit), just a failure
                # relayed in its error frame.
                frames = [protocol.encode_error(
                    request_id, protocol.E_INTERNAL, str(exc))]
            else:
                # Reply in the request's wire dtype; a result too large for
                # one frame streams back as a RESULT_CHUNK series.  All its
                # frames are queued as one item so the reply is written
                # contiguously and releases exactly one in-flight slot.
                t_encode = time.monotonic()
                frames = protocol.encode_result_frames(
                    request_id, future.result(), dtype=dtype,
                    max_frame_bytes=self.policy.max_frame_bytes)
                if trace_id:
                    tracer.emit("gateway_encode", trace_id, t_encode,
                                time.monotonic() - t_encode, sampled=True)
        # The in-flight slot is released by the writer once this frame is
        # actually on the wire (see _write_loop) — releasing it here would
        # let a slow-draining client re-fill the queue beyond its cap while
        # earlier replies still wait on its stalled socket.
        conn.outgoing.put_nowait(
            (b"".join(frames), True, len(frames), trace_id))

    async def _enqueue(self, conn: _Connection, frame: bytes) -> None:
        """Queue a protocol-error frame, bounded by its own slot budget.

        Blocking here pauses the read loop — a peer flooding malformed
        frames without draining its error replies stops being read."""
        if not conn.alive:
            return
        await conn.error_slots.acquire()
        if not conn.alive:                 # writer died while we waited
            conn.error_slots.release()
            return
        conn.outgoing.put_nowait((frame, False, 1, 0))

    def _release_slot(self, conn: _Connection) -> None:
        conn.inflight -= 1
        conn.reads_resumed.set()
        conn.slots_freed.set()

    # ------------------------------------------------------- telemetry pumps
    def _start_stats_pump(self, conn: _Connection,
                          message: protocol.StatsSubscribe) -> None:
        """Begin periodic STATS frames for one subscription (loop thread)."""
        interval = max(self.policy.stats_interval, float(message.interval_s))
        conn.pumps.append(asyncio.ensure_future(
            self._stats_pump(conn, message.request_id, interval)))

    async def _stats_pump(self, conn: _Connection, request_id: int,
                          interval: float) -> None:
        while conn.alive:
            # Telemetry frames ride the same in-flight slot budget as data
            # replies: at the cap the tick is skipped (stats are periodic
            # snapshots — the next tick carries fresher numbers anyway), so
            # a slow consumer throttles only itself.
            if conn.inflight < self.policy.max_inflight_per_conn:
                payload = self._server.stats().as_dict()
                payload["gateway"] = self.stats()
                conn.inflight += 1
                conn.outgoing.put_nowait(
                    (protocol.encode_stats(request_id, payload), True, 1, 0))
            await asyncio.sleep(interval)

    def _start_events_pump(self, conn: _Connection,
                           message: protocol.EventsSubscribe) -> None:
        """Begin streaming EVENT frames for one subscription (loop thread)."""
        loop = asyncio.get_running_loop()
        ready = asyncio.Event()
        # The broker wakeup fires on a publisher's thread; bounce it onto
        # the loop.  The broker swallows wakeup exceptions, so a loop torn
        # down mid-publish can never break the publishing lane.
        subscription = self._server.telemetry.subscribe(
            topics=message.topics or None,
            maxsize=self.policy.telemetry_maxsize,
            wakeup=lambda: loop.call_soon_threadsafe(ready.set))
        conn.pumps.append(asyncio.ensure_future(
            self._events_pump(conn, message.request_id, subscription, ready)))

    async def _events_pump(self, conn: _Connection, request_id: int,
                           subscription, ready: asyncio.Event) -> None:
        try:
            while conn.alive:
                ready.clear()
                while conn.inflight < self.policy.max_inflight_per_conn:
                    event = subscription.get_nowait()
                    if event is None:
                        break
                    conn.inflight += 1
                    conn.outgoing.put_nowait((protocol.encode_event(
                        request_id, event.as_dict()), True, 1, 0))
                if (len(subscription)
                        and conn.inflight
                        >= self.policy.max_inflight_per_conn):
                    # Backlog but no slots: wait for a written reply to free
                    # one.  Events keep accumulating in the subscription's
                    # bounded queue meanwhile (dropping oldest when full) —
                    # backpressure costs this subscriber history, never the
                    # publisher latency and never other connections.
                    conn.slots_freed.clear()
                    await conn.slots_freed.wait()
                else:
                    await ready.wait()
        finally:
            subscription.close()

    async def _write_loop(self, conn: _Connection) -> None:
        try:
            while True:
                item = await conn.outgoing.get()
                if item is None:
                    return
                frame, counts_inflight, n_frames, trace_id = item
                # Count before writing: transport.write() can push the bytes
                # to the socket synchronously, and a client observing the
                # reply must also observe it counted.
                self.counters.n_frames_out += n_frames
                if trace_id:
                    # Sampling was decided when _reply queued the item; an
                    # unsampled reply arrives with trace id 0.
                    t_write = time.monotonic()
                    conn.writer.write(frame)
                    await conn.writer.drain()
                    self._server.tracer.emit(
                        "gateway_write", trace_id, t_write,
                        time.monotonic() - t_write, sampled=True)
                else:
                    conn.writer.write(frame)
                    await conn.writer.drain()
                if counts_inflight:
                    self._release_slot(conn)
                else:
                    conn.error_slots.release()
        except (ConnectionError, OSError):
            conn.alive = False
            # Unblock a reader parked on backpressure or on an error slot
            # (it re-checks conn.alive on wake-up and exits), and any events
            # pump parked on the slot budget.
            conn.reads_resumed.set()
            conn.slots_freed.set()
            conn.error_slots.release()
            # Drain until the read loop's sentinel arrives (nothing enqueues
            # after it: the read loop has exited by then).
            while True:
                if await conn.outgoing.get() is None:
                    return
