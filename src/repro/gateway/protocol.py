"""Gateway wire protocol: length-prefixed binary frames, stdlib only.

One frame is a 4-byte big-endian payload length followed by the payload.
Every payload starts with a fixed 12-byte prefix::

    !HBBQ   magic 0x5247 ('RG') | version | message type | request id

followed by a per-type body:

* **REQUEST** (client → gateway): ``!BIH`` dtype code | n_steps (shape
  header) | key length, then the model key (ASCII) and the raw samples —
  ``n_steps`` little-endian float64 values.  The explicit dtype/shape header
  lets the gateway validate the body *before* touching the model server:
  a declared shape that disagrees with the byte count is a malformed frame,
  not a garbled model input.
* **RESULT** (gateway → client): ``!BI`` dtype code | n_steps, then the raw
  little-endian float64 output row.
* **ERROR** (gateway → client): ``!H`` error code, then a UTF-8 message.
  ``request_id`` names the request being failed; ``request_id == 0`` means
  the error is connection-fatal (the gateway could not trust the stream any
  further and is closing it).

Decoding raises :class:`~repro.exceptions.FrameError` with the recovered
``request_id`` (when the fixed prefix was intact) and the wire error code,
so a server can fail exactly the offending request — or only the offending
connection — and a client can map a reply onto the caller that sent it.

The request id is chosen by the client (non-zero, unique among its in-flight
requests on that connection); the gateway echoes it verbatim.  Replies may
arrive in any order — different models complete on different dispatch lanes.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from ..exceptions import FrameError

__all__ = [
    "DTYPE_FLOAT64",
    "ERROR",
    "ErrorReply",
    "MAX_KEY_BYTES",
    "PROTOCOL_VERSION",
    "REQUEST",
    "RESULT",
    "Request",
    "Result",
    "E_BAD_FRAME",
    "E_BAD_REQUEST",
    "E_CONNECTION_LIMIT",
    "E_FRAME_TOO_LARGE",
    "E_INTERNAL",
    "E_SERVER_CLOSED",
    "encode_error",
    "encode_request",
    "encode_result",
    "decode_payload",
    "frame_overhead",
]

#: ``'RG'`` — repro gateway.
MAGIC = 0x5247
PROTOCOL_VERSION = 1

# Message types.
REQUEST, RESULT, ERROR = 1, 2, 3

#: Sample dtype codes (float64 is the only one the runtime serves today; the
#: byte exists so the protocol can grow without a version bump).
DTYPE_FLOAT64 = 1

# Error codes carried by ERROR frames.
E_BAD_FRAME = 1          #: malformed payload (magic/version/type/body)
E_BAD_REQUEST = 2        #: the model server rejected the request at submit
E_SERVER_CLOSED = 3      #: the model server behind the gateway is closed
E_INTERNAL = 4           #: evaluation failed server-side
E_FRAME_TOO_LARGE = 5    #: length prefix exceeded ``max_frame_bytes``
E_CONNECTION_LIMIT = 6   #: refused by ``max_connections`` admission control

MAX_KEY_BYTES = 512

LENGTH_PREFIX = struct.Struct("!I")
_PREFIX = struct.Struct("!HBBQ")
_REQUEST_HEAD = struct.Struct("!BIH")
_RESULT_HEAD = struct.Struct("!BI")
_ERROR_HEAD = struct.Struct("!H")

#: Wire dtype of every sample/output payload: little-endian float64,
#: independent of host byte order.
WIRE_DTYPE = np.dtype("<f8")


@dataclass(frozen=True)
class Request:
    """A decoded request frame."""

    request_id: int
    key: str
    samples: np.ndarray


@dataclass(frozen=True)
class Result:
    """A decoded result frame."""

    request_id: int
    outputs: np.ndarray


@dataclass(frozen=True)
class ErrorReply:
    """A decoded error frame (``request_id == 0`` → connection-fatal)."""

    request_id: int
    code: int
    message: str


def frame_overhead(key: str = "") -> int:
    """Bytes a request frame adds on top of the raw sample payload."""
    return (LENGTH_PREFIX.size + _PREFIX.size + _REQUEST_HEAD.size
            + len(key.encode("ascii")))


def _frame(payload: bytes) -> bytes:
    return LENGTH_PREFIX.pack(len(payload)) + payload


def encode_request(request_id: int, key: str, samples) -> bytes:
    """One request frame (length prefix included)."""
    if request_id < 1:
        raise FrameError("request_id must be a positive integer (0 is the "
                         "connection-fatal sentinel)")
    try:
        key_bytes = key.encode("ascii")
    except UnicodeEncodeError as exc:
        raise FrameError(f"model key must be ASCII: {exc}") from None
    if not key_bytes or len(key_bytes) > MAX_KEY_BYTES:
        raise FrameError(f"model key must be 1..{MAX_KEY_BYTES} ASCII bytes; "
                         f"got {len(key_bytes)}")
    body = np.ascontiguousarray(np.asarray(samples, dtype=float).ravel(),
                                dtype=WIRE_DTYPE).tobytes()
    n_steps = len(body) // WIRE_DTYPE.itemsize
    payload = (_PREFIX.pack(MAGIC, PROTOCOL_VERSION, REQUEST, request_id)
               + _REQUEST_HEAD.pack(DTYPE_FLOAT64, n_steps, len(key_bytes))
               + key_bytes + body)
    return _frame(payload)


def encode_result(request_id: int, outputs) -> bytes:
    """One result frame (length prefix included)."""
    body = np.ascontiguousarray(np.asarray(outputs, dtype=float).ravel(),
                                dtype=WIRE_DTYPE).tobytes()
    n_steps = len(body) // WIRE_DTYPE.itemsize
    payload = (_PREFIX.pack(MAGIC, PROTOCOL_VERSION, RESULT, request_id)
               + _RESULT_HEAD.pack(DTYPE_FLOAT64, n_steps) + body)
    return _frame(payload)


def encode_error(request_id: int, code: int, message: str) -> bytes:
    """One error frame (length prefix included)."""
    payload = (_PREFIX.pack(MAGIC, PROTOCOL_VERSION, ERROR, request_id)
               + _ERROR_HEAD.pack(code) + message.encode("utf-8"))
    return _frame(payload)


def decode_payload(payload: bytes) -> Request | Result | ErrorReply:
    """Decode one frame payload (the bytes after the length prefix).

    Raises :class:`~repro.exceptions.FrameError` on any malformation,
    carrying the request id when the 12-byte fixed prefix was readable so
    the error can be attributed to the offending request.
    """
    if len(payload) < _PREFIX.size:
        raise FrameError(
            f"truncated frame header: {len(payload)} byte(s), need at least "
            f"{_PREFIX.size}", code=E_BAD_FRAME)
    magic, version, msg_type, request_id = _PREFIX.unpack_from(payload)
    if magic != MAGIC:
        raise FrameError(f"bad frame magic 0x{magic:04x} (expected "
                         f"0x{MAGIC:04x})", code=E_BAD_FRAME)
    if version != PROTOCOL_VERSION:
        raise FrameError(
            f"unsupported protocol version {version} (this gateway speaks "
            f"version {PROTOCOL_VERSION})", code=E_BAD_FRAME)
    body = payload[_PREFIX.size:]
    if msg_type == REQUEST:
        return _decode_request(request_id, body)
    if msg_type == RESULT:
        return _decode_result(request_id, body)
    if msg_type == ERROR:
        if len(body) < _ERROR_HEAD.size:
            raise FrameError("truncated error frame", request_id=request_id,
                             code=E_BAD_FRAME)
        (code,) = _ERROR_HEAD.unpack_from(body)
        message = body[_ERROR_HEAD.size:].decode("utf-8", errors="replace")
        return ErrorReply(request_id=request_id, code=code, message=message)
    raise FrameError(f"unknown message type {msg_type}",
                     request_id=request_id, code=E_BAD_FRAME)


def _samples_from(body: bytes, n_steps: int, request_id: int,
                  what: str) -> np.ndarray:
    if len(body) != n_steps * WIRE_DTYPE.itemsize:
        raise FrameError(
            f"{what} shape header declares {n_steps} float64 sample(s) "
            f"({n_steps * WIRE_DTYPE.itemsize} bytes) but the frame carries "
            f"{len(body)} byte(s)", request_id=request_id, code=E_BAD_FRAME)
    # Native float64 for the runtime; no copy on little-endian hosts.
    return np.frombuffer(body, dtype=WIRE_DTYPE).astype(np.float64, copy=False)


def _decode_request(request_id: int, body: bytes) -> Request:
    if request_id < 1:
        raise FrameError("request frames need a positive request_id",
                         code=E_BAD_FRAME)
    if len(body) < _REQUEST_HEAD.size:
        raise FrameError("truncated request header", request_id=request_id,
                         code=E_BAD_FRAME)
    dtype_code, n_steps, key_len = _REQUEST_HEAD.unpack_from(body)
    if dtype_code != DTYPE_FLOAT64:
        raise FrameError(
            f"unsupported dtype code {dtype_code} (this gateway serves "
            f"float64 = code {DTYPE_FLOAT64})", request_id=request_id,
            code=E_BAD_FRAME)
    rest = body[_REQUEST_HEAD.size:]
    if key_len < 1 or key_len > MAX_KEY_BYTES or len(rest) < key_len:
        raise FrameError(
            f"bad model-key length {key_len} (1..{MAX_KEY_BYTES}, frame has "
            f"{len(rest)} byte(s) after the header)", request_id=request_id,
            code=E_BAD_FRAME)
    try:
        key = rest[:key_len].decode("ascii")
    except UnicodeDecodeError as exc:
        raise FrameError(f"model key is not ASCII: {exc}",
                         request_id=request_id, code=E_BAD_FRAME) from None
    samples = _samples_from(rest[key_len:], n_steps, request_id, "request")
    return Request(request_id=request_id, key=key, samples=samples)


def _decode_result(request_id: int, body: bytes) -> Result:
    if len(body) < _RESULT_HEAD.size:
        raise FrameError("truncated result header", request_id=request_id,
                         code=E_BAD_FRAME)
    dtype_code, n_steps = _RESULT_HEAD.unpack_from(body)
    if dtype_code != DTYPE_FLOAT64:
        raise FrameError(f"unsupported dtype code {dtype_code} in result",
                         request_id=request_id, code=E_BAD_FRAME)
    outputs = _samples_from(body[_RESULT_HEAD.size:], n_steps, request_id,
                            "result")
    return Result(request_id=request_id, outputs=outputs)
