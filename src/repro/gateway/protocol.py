"""Gateway wire protocol: length-prefixed binary frames, stdlib only.

One frame is a 4-byte big-endian payload length followed by the payload.
Every payload starts with a fixed 12-byte prefix::

    !HBBQ   magic 0x5247 ('RG') | version | message type | request id

followed by a per-type body:

* **REQUEST** (client → gateway): ``!BIH`` dtype code | n_steps (shape
  header) | key length, then the model key (ASCII) and the raw samples —
  ``n_steps`` little-endian values of the declared dtype.  The explicit
  dtype/shape header lets the gateway validate the body *before* touching
  the model server: a declared shape that disagrees with the byte count is
  a malformed frame, not a garbled model input.
* **RESULT** (gateway → client): ``!BI`` dtype code | n_steps, then the raw
  little-endian output row.  A result is encoded in the dtype its request
  declared.
* **ERROR** (gateway → client): ``!H`` error code, then a UTF-8 message.
  ``request_id`` names the request being failed; ``request_id == 0`` means
  the error is connection-fatal (the gateway could not trust the stream any
  further and is closing it).
* **REQUEST_CHUNK** (client → gateway): ``!BIIH`` dtype code | total
  n_steps | sample offset | key length, then the key and this chunk's
  samples.  A stimulus longer than ``max_frame_bytes`` streams as an
  in-order chunk series (offset 0 first, each offset equal to the samples
  already sent); the stream completes — and is served exactly like a plain
  REQUEST — when the accumulated samples reach the declared total.
* **RESULT_CHUNK** (gateway → client): ``!BII`` dtype code | total n_steps
  | sample offset, then this chunk's samples.  The result-side mirror of
  REQUEST_CHUNK, for replies that exceed ``max_frame_bytes``.
* **STATS_SUBSCRIBE** (client → gateway): ``!d`` interval seconds.  The
  gateway starts emitting periodic **STATS** frames (UTF-8 JSON body:
  ``ServeStats.as_dict()`` plus a ``"gateway"`` counter section) on this
  connection at the requested cadence, clamped up to
  ``ServePolicy.stats_interval``, echoing the subscription's request id on
  every frame.  One subscription per request id; the stream ends with the
  connection.
* **EVENTS_SUBSCRIBE** (client → gateway): UTF-8 JSON body — a list of
  topic names (event class names; empty list = every topic).  The gateway
  streams matching telemetry events as **EVENT** frames (UTF-8 JSON body:
  the event's ``as_dict()``), echoing the subscription's request id.  A
  slow subscriber's queue drops oldest-first server-side; its frames share
  the connection's ``max_inflight_per_conn`` slot budget, so telemetry can
  never starve the same connection's data traffic — nor anyone else's.

**Dtype codes**: float64 (code 1) is the native wire format.  A client may
opt into float32 (code 2) to halve its request/response bytes; the gateway
upcasts to float64 at the edge — the model server and runtime only ever see
float64 — and encodes the reply in the request's dtype.  The dtype is a
per-message transport choice, not a protocol version: version 1 speaks both.

Decoding raises :class:`~repro.exceptions.FrameError` with the recovered
``request_id`` (when the fixed prefix was intact) and the wire error code,
so a server can fail exactly the offending request — or only the offending
connection — and a client can map a reply onto the caller that sent it.

The request id is chosen by the client (non-zero, unique among its in-flight
requests on that connection); the gateway echoes it verbatim.  Replies may
arrive in any order — different models complete on different dispatch lanes.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field

import numpy as np

from ..exceptions import FrameError

__all__ = [
    "ChunkAssembler",
    "DTYPE_FLOAT32",
    "DTYPE_FLOAT64",
    "ERROR",
    "ErrorReply",
    "MAX_KEY_BYTES",
    "PROTOCOL_VERSION",
    "EVENT",
    "EVENTS_SUBSCRIBE",
    "EventFrame",
    "EventsSubscribe",
    "REQUEST",
    "REQUEST_CHUNK",
    "RESULT",
    "RESULT_CHUNK",
    "Request",
    "RequestChunk",
    "Result",
    "ResultChunk",
    "STATS",
    "STATS_SUBSCRIBE",
    "StatsFrame",
    "StatsSubscribe",
    "E_BAD_FRAME",
    "E_BAD_REQUEST",
    "E_CONNECTION_LIMIT",
    "E_FRAME_TOO_LARGE",
    "E_INTERNAL",
    "E_SERVER_CLOSED",
    "dtype_code",
    "encode_error",
    "encode_event",
    "encode_events_subscribe",
    "encode_request",
    "encode_request_frames",
    "encode_result",
    "encode_result_frames",
    "encode_stats",
    "encode_stats_subscribe",
    "decode_payload",
    "frame_overhead",
]

#: ``'RG'`` — repro gateway.
MAGIC = 0x5247
PROTOCOL_VERSION = 1

# Message types.
REQUEST, RESULT, ERROR = 1, 2, 3
REQUEST_CHUNK, RESULT_CHUNK = 4, 5
STATS_SUBSCRIBE, EVENTS_SUBSCRIBE, STATS, EVENT = 6, 7, 8, 9

#: Sample dtype codes.  Samples always reach the runtime as float64; the
#: code only chooses the wire representation (float32 halves the bytes at
#: ~1e-7 relative quantisation — the client's call).
DTYPE_FLOAT64 = 1
DTYPE_FLOAT32 = 2

#: Wire representation per dtype code: always little-endian, independent of
#: host byte order.
WIRE_DTYPES = {DTYPE_FLOAT64: np.dtype("<f8"), DTYPE_FLOAT32: np.dtype("<f4")}

# Error codes carried by ERROR frames.
E_BAD_FRAME = 1          #: malformed payload (magic/version/type/body)
E_BAD_REQUEST = 2        #: the model server rejected the request at submit
E_SERVER_CLOSED = 3      #: the model server behind the gateway is closed
E_INTERNAL = 4           #: evaluation failed server-side
E_FRAME_TOO_LARGE = 5    #: length prefix exceeded ``max_frame_bytes``
E_CONNECTION_LIMIT = 6   #: refused by ``max_connections`` admission control

MAX_KEY_BYTES = 512

LENGTH_PREFIX = struct.Struct("!I")
_PREFIX = struct.Struct("!HBBQ")
_REQUEST_HEAD = struct.Struct("!BIH")
_RESULT_HEAD = struct.Struct("!BI")
_ERROR_HEAD = struct.Struct("!H")
_REQUEST_CHUNK_HEAD = struct.Struct("!BIIH")
_RESULT_CHUNK_HEAD = struct.Struct("!BII")
_STATS_SUB_HEAD = struct.Struct("!d")

#: Native float64 wire dtype (kept for callers that sized buffers off it).
WIRE_DTYPE = WIRE_DTYPES[DTYPE_FLOAT64]


def dtype_code(dtype) -> int:
    """Normalise a dtype spec (code, name, or numpy dtype) to its wire code."""
    if isinstance(dtype, int):
        if dtype not in WIRE_DTYPES:
            raise FrameError(f"unsupported dtype code {dtype} (known: "
                             f"{sorted(WIRE_DTYPES)})")
        return dtype
    try:
        wanted = np.dtype(dtype)
    except TypeError as exc:
        raise FrameError(f"unsupported wire dtype {dtype!r}: {exc}") from None
    for code, wire in WIRE_DTYPES.items():
        if wire.kind == wanted.kind and wire.itemsize == wanted.itemsize:
            return code
    raise FrameError(
        f"unsupported wire dtype {dtype!r} (supported: float64, float32)")


@dataclass(frozen=True)
class Request:
    """A decoded request frame (samples already upcast to float64)."""

    request_id: int
    key: str
    samples: np.ndarray
    #: Wire dtype the client sent — the reply must be encoded in kind.
    dtype: int = DTYPE_FLOAT64


@dataclass(frozen=True)
class Result:
    """A decoded result frame (outputs already upcast to float64)."""

    request_id: int
    outputs: np.ndarray
    dtype: int = DTYPE_FLOAT64


@dataclass(frozen=True)
class RequestChunk:
    """One slice of a streaming request (feed to a :class:`ChunkAssembler`)."""

    request_id: int
    key: str
    samples: np.ndarray
    dtype: int
    n_steps_total: int
    offset: int


@dataclass(frozen=True)
class ResultChunk:
    """One slice of a streaming result (feed to a :class:`ChunkAssembler`)."""

    request_id: int
    outputs: np.ndarray
    dtype: int
    n_steps_total: int
    offset: int


@dataclass(frozen=True)
class ErrorReply:
    """A decoded error frame (``request_id == 0`` → connection-fatal)."""

    request_id: int
    code: int
    message: str


@dataclass(frozen=True)
class StatsSubscribe:
    """A decoded STATS_SUBSCRIBE frame (interval is a request, see clamp)."""

    request_id: int
    interval_s: float


@dataclass(frozen=True)
class EventsSubscribe:
    """A decoded EVENTS_SUBSCRIBE frame (empty ``topics`` = every topic)."""

    request_id: int
    topics: tuple[str, ...] = ()


@dataclass(frozen=True)
class StatsFrame:
    """A decoded STATS frame (one periodic server-stats snapshot)."""

    request_id: int
    payload: dict


@dataclass(frozen=True)
class EventFrame:
    """A decoded EVENT frame (one telemetry event's ``as_dict`` payload)."""

    request_id: int
    payload: dict


def frame_overhead(key: str = "") -> int:
    """Bytes a request frame adds on top of the raw sample payload."""
    try:
        key_bytes = key.encode("ascii")
    except UnicodeEncodeError as exc:
        raise FrameError(f"model key must be ASCII: {exc}") from None
    return (LENGTH_PREFIX.size + _PREFIX.size + _REQUEST_HEAD.size
            + len(key_bytes))


def _frame(payload: bytes) -> bytes:
    return LENGTH_PREFIX.pack(len(payload)) + payload


def _key_bytes(key: str) -> bytes:
    try:
        key_bytes = key.encode("ascii")
    except UnicodeEncodeError as exc:
        raise FrameError(f"model key must be ASCII: {exc}") from None
    if not key_bytes or len(key_bytes) > MAX_KEY_BYTES:
        raise FrameError(f"model key must be 1..{MAX_KEY_BYTES} ASCII bytes; "
                         f"got {len(key_bytes)}")
    return key_bytes


def _wire_samples(values, dtype: int) -> np.ndarray:
    """Flatten ``values`` into a contiguous array of the wire dtype."""
    return np.ascontiguousarray(np.asarray(values, dtype=float).ravel(),
                                dtype=WIRE_DTYPES[dtype])


def encode_request(request_id: int, key: str, samples,
                   dtype: int = DTYPE_FLOAT64) -> bytes:
    """One request frame (length prefix included)."""
    if request_id < 1:
        raise FrameError("request_id must be a positive integer (0 is the "
                         "connection-fatal sentinel)")
    key_bytes = _key_bytes(key)
    dtype = dtype_code(dtype)
    wire = _wire_samples(samples, dtype)
    payload = (_PREFIX.pack(MAGIC, PROTOCOL_VERSION, REQUEST, request_id)
               + _REQUEST_HEAD.pack(dtype, wire.size, len(key_bytes))
               + key_bytes + wire.tobytes())
    return _frame(payload)


def encode_result(request_id: int, outputs,
                  dtype: int = DTYPE_FLOAT64) -> bytes:
    """One result frame (length prefix included)."""
    dtype = dtype_code(dtype)
    wire = _wire_samples(outputs, dtype)
    payload = (_PREFIX.pack(MAGIC, PROTOCOL_VERSION, RESULT, request_id)
               + _RESULT_HEAD.pack(dtype, wire.size) + wire.tobytes())
    return _frame(payload)


def _chunk_series(request_id: int, msg_type: int, head_size: int,
                  make_head, key_bytes: bytes, wire: np.ndarray,
                  max_frame_bytes: int) -> list[bytes]:
    """Split ``wire`` into chunk frames of at most ``max_frame_bytes``.

    ``make_head(offset)`` packs the per-chunk body header of ``head_size``
    bytes; ``key_bytes`` rides in every chunk (empty for result chunks).
    """
    per_chunk = ((max_frame_bytes - _PREFIX.size - head_size
                  - len(key_bytes)) // wire.dtype.itemsize)
    if per_chunk < 1:
        raise FrameError(
            f"max_frame_bytes={max_frame_bytes} cannot carry even one "
            f"sample per chunk frame "
            f"({_PREFIX.size + head_size + len(key_bytes)} bytes of headers)",
            request_id=request_id)
    frames = []
    for offset in range(0, wire.size, per_chunk):
        part = wire[offset:offset + per_chunk]
        payload = (_PREFIX.pack(MAGIC, PROTOCOL_VERSION, msg_type, request_id)
                   + make_head(offset) + key_bytes + part.tobytes())
        frames.append(_frame(payload))
    return frames


def encode_request_frames(request_id: int, key: str, samples,
                          dtype: int = DTYPE_FLOAT64,
                          max_frame_bytes: int = 64 << 20) -> list[bytes]:
    """Encode a request as one frame, or a chunk series when it must stream.

    The single-frame form is byte-identical to :func:`encode_request`; a
    stimulus whose frame would exceed ``max_frame_bytes`` becomes an
    in-order ``REQUEST_CHUNK`` series instead of being refused.
    """
    if request_id < 1:
        raise FrameError("request_id must be a positive integer (0 is the "
                         "connection-fatal sentinel)")
    key_bytes = _key_bytes(key)
    dtype = dtype_code(dtype)
    wire = _wire_samples(samples, dtype)
    single_payload = (_PREFIX.size + _REQUEST_HEAD.size + len(key_bytes)
                      + wire.nbytes)
    if single_payload <= max_frame_bytes:
        return [encode_request(request_id, key, samples, dtype=dtype)]
    return _chunk_series(
        request_id, REQUEST_CHUNK, _REQUEST_CHUNK_HEAD.size,
        lambda offset: _REQUEST_CHUNK_HEAD.pack(dtype, wire.size, offset,
                                                len(key_bytes)),
        key_bytes, wire, max_frame_bytes)


def encode_result_frames(request_id: int, outputs,
                         dtype: int = DTYPE_FLOAT64,
                         max_frame_bytes: int = 64 << 20) -> list[bytes]:
    """Encode a result as one frame, or a ``RESULT_CHUNK`` series."""
    dtype = dtype_code(dtype)
    wire = _wire_samples(outputs, dtype)
    single_payload = _PREFIX.size + _RESULT_HEAD.size + wire.nbytes
    if single_payload <= max_frame_bytes:
        return [encode_result(request_id, outputs, dtype=dtype)]
    return _chunk_series(
        request_id, RESULT_CHUNK, _RESULT_CHUNK_HEAD.size,
        lambda offset: _RESULT_CHUNK_HEAD.pack(dtype, wire.size, offset),
        b"", wire, max_frame_bytes)


def encode_error(request_id: int, code: int, message: str) -> bytes:
    """One error frame (length prefix included)."""
    payload = (_PREFIX.pack(MAGIC, PROTOCOL_VERSION, ERROR, request_id)
               + _ERROR_HEAD.pack(code) + message.encode("utf-8"))
    return _frame(payload)


def encode_stats_subscribe(request_id: int, interval_s: float = 0.0) -> bytes:
    """One STATS_SUBSCRIBE frame (length prefix included)."""
    if request_id < 1:
        raise FrameError("request_id must be a positive integer (0 is the "
                         "connection-fatal sentinel)")
    payload = (_PREFIX.pack(MAGIC, PROTOCOL_VERSION, STATS_SUBSCRIBE,
                            request_id)
               + _STATS_SUB_HEAD.pack(float(interval_s)))
    return _frame(payload)


def encode_events_subscribe(request_id: int, topics=()) -> bytes:
    """One EVENTS_SUBSCRIBE frame (length prefix included)."""
    if request_id < 1:
        raise FrameError("request_id must be a positive integer (0 is the "
                         "connection-fatal sentinel)")
    body = json.dumps([str(topic) for topic in topics]).encode("utf-8")
    payload = (_PREFIX.pack(MAGIC, PROTOCOL_VERSION, EVENTS_SUBSCRIBE,
                            request_id) + body)
    return _frame(payload)


def encode_stats(request_id: int, stats: dict) -> bytes:
    """One STATS frame (length prefix included; body is UTF-8 JSON)."""
    body = json.dumps(stats, sort_keys=True).encode("utf-8")
    payload = (_PREFIX.pack(MAGIC, PROTOCOL_VERSION, STATS, request_id)
               + body)
    return _frame(payload)


def encode_event(request_id: int, event: dict) -> bytes:
    """One EVENT frame (length prefix included; body is UTF-8 JSON)."""
    body = json.dumps(event, sort_keys=True).encode("utf-8")
    payload = (_PREFIX.pack(MAGIC, PROTOCOL_VERSION, EVENT, request_id)
               + body)
    return _frame(payload)


def decode_payload(payload: bytes):
    """Decode one frame payload (the bytes after the length prefix).

    Returns a :class:`Request`, :class:`Result`, :class:`ErrorReply`,
    :class:`RequestChunk` or :class:`ResultChunk`.  Raises
    :class:`~repro.exceptions.FrameError` on any malformation, carrying the
    request id when the 12-byte fixed prefix was readable so the error can
    be attributed to the offending request.
    """
    if len(payload) < _PREFIX.size:
        raise FrameError(
            f"truncated frame header: {len(payload)} byte(s), need at least "
            f"{_PREFIX.size}", code=E_BAD_FRAME)
    magic, version, msg_type, request_id = _PREFIX.unpack_from(payload)
    if magic != MAGIC:
        raise FrameError(f"bad frame magic 0x{magic:04x} (expected "
                         f"0x{MAGIC:04x})", code=E_BAD_FRAME)
    if version != PROTOCOL_VERSION:
        raise FrameError(
            f"unsupported protocol version {version} (this gateway speaks "
            f"version {PROTOCOL_VERSION})", code=E_BAD_FRAME)
    body = payload[_PREFIX.size:]
    if msg_type == REQUEST:
        return _decode_request(request_id, body)
    if msg_type == RESULT:
        return _decode_result(request_id, body)
    if msg_type == REQUEST_CHUNK:
        return _decode_request_chunk(request_id, body)
    if msg_type == RESULT_CHUNK:
        return _decode_result_chunk(request_id, body)
    if msg_type == ERROR:
        if len(body) < _ERROR_HEAD.size:
            raise FrameError("truncated error frame", request_id=request_id,
                             code=E_BAD_FRAME)
        (code,) = _ERROR_HEAD.unpack_from(body)
        message = body[_ERROR_HEAD.size:].decode("utf-8", errors="replace")
        return ErrorReply(request_id=request_id, code=code, message=message)
    if msg_type == STATS_SUBSCRIBE:
        if request_id < 1:
            raise FrameError("stats subscriptions need a positive request_id",
                             code=E_BAD_FRAME)
        if len(body) < _STATS_SUB_HEAD.size:
            raise FrameError("truncated stats-subscribe frame",
                             request_id=request_id, code=E_BAD_FRAME)
        (interval_s,) = _STATS_SUB_HEAD.unpack_from(body)
        return StatsSubscribe(request_id=request_id, interval_s=interval_s)
    if msg_type == EVENTS_SUBSCRIBE:
        if request_id < 1:
            raise FrameError(
                "events subscriptions need a positive request_id",
                code=E_BAD_FRAME)
        topics = _decode_json(body, request_id, "events-subscribe")
        if not isinstance(topics, list) or not all(
                isinstance(topic, str) for topic in topics):
            raise FrameError(
                "events-subscribe body must be a JSON list of topic names",
                request_id=request_id, code=E_BAD_FRAME)
        return EventsSubscribe(request_id=request_id, topics=tuple(topics))
    if msg_type == STATS:
        payload_dict = _decode_json(body, request_id, "stats")
        if not isinstance(payload_dict, dict):
            raise FrameError("stats body must be a JSON object",
                             request_id=request_id, code=E_BAD_FRAME)
        return StatsFrame(request_id=request_id, payload=payload_dict)
    if msg_type == EVENT:
        payload_dict = _decode_json(body, request_id, "event")
        if not isinstance(payload_dict, dict):
            raise FrameError("event body must be a JSON object",
                             request_id=request_id, code=E_BAD_FRAME)
        return EventFrame(request_id=request_id, payload=payload_dict)
    raise FrameError(f"unknown message type {msg_type}",
                     request_id=request_id, code=E_BAD_FRAME)


def _decode_json(body: bytes, request_id: int, what: str):
    try:
        return json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"malformed JSON in {what} frame: {exc}",
                         request_id=request_id, code=E_BAD_FRAME) from None


def _checked_dtype(dtype_code_raw: int, request_id: int, what: str) -> int:
    if dtype_code_raw not in WIRE_DTYPES:
        raise FrameError(
            f"unsupported dtype code {dtype_code_raw} in {what} (this "
            f"gateway speaks float64 = code {DTYPE_FLOAT64}, float32 = code "
            f"{DTYPE_FLOAT32})", request_id=request_id, code=E_BAD_FRAME)
    return dtype_code_raw


def _samples_from(body: bytes, n_steps: int, dtype: int, request_id: int,
                  what: str) -> np.ndarray:
    wire = WIRE_DTYPES[dtype]
    if len(body) != n_steps * wire.itemsize:
        raise FrameError(
            f"{what} shape header declares {n_steps} {wire.name} sample(s) "
            f"({n_steps * wire.itemsize} bytes) but the frame carries "
            f"{len(body)} byte(s)", request_id=request_id, code=E_BAD_FRAME)
    # Upcast at the edge: the runtime only ever sees native float64 (a no-op
    # copy-free view for float64 frames on little-endian hosts).
    return np.frombuffer(body, dtype=wire).astype(np.float64, copy=False)


def _decode_request(request_id: int, body: bytes) -> Request:
    if request_id < 1:
        raise FrameError("request frames need a positive request_id",
                         code=E_BAD_FRAME)
    if len(body) < _REQUEST_HEAD.size:
        raise FrameError("truncated request header", request_id=request_id,
                         code=E_BAD_FRAME)
    dtype_raw, n_steps, key_len = _REQUEST_HEAD.unpack_from(body)
    dtype = _checked_dtype(dtype_raw, request_id, "request")
    rest = body[_REQUEST_HEAD.size:]
    key = _decode_key(rest, key_len, request_id)
    samples = _samples_from(rest[key_len:], n_steps, dtype, request_id,
                            "request")
    return Request(request_id=request_id, key=key, samples=samples,
                   dtype=dtype)


def _decode_key(rest: bytes, key_len: int, request_id: int) -> str:
    if key_len < 1 or key_len > MAX_KEY_BYTES or len(rest) < key_len:
        raise FrameError(
            f"bad model-key length {key_len} (1..{MAX_KEY_BYTES}, frame has "
            f"{len(rest)} byte(s) after the header)", request_id=request_id,
            code=E_BAD_FRAME)
    try:
        return rest[:key_len].decode("ascii")
    except UnicodeDecodeError as exc:
        raise FrameError(f"model key is not ASCII: {exc}",
                         request_id=request_id, code=E_BAD_FRAME) from None


def _decode_result(request_id: int, body: bytes) -> Result:
    if len(body) < _RESULT_HEAD.size:
        raise FrameError("truncated result header", request_id=request_id,
                         code=E_BAD_FRAME)
    dtype_raw, n_steps = _RESULT_HEAD.unpack_from(body)
    dtype = _checked_dtype(dtype_raw, request_id, "result")
    outputs = _samples_from(body[_RESULT_HEAD.size:], n_steps, dtype,
                            request_id, "result")
    return Result(request_id=request_id, outputs=outputs, dtype=dtype)


def _decode_request_chunk(request_id: int, body: bytes) -> RequestChunk:
    if request_id < 1:
        raise FrameError("request chunks need a positive request_id",
                         code=E_BAD_FRAME)
    if len(body) < _REQUEST_CHUNK_HEAD.size:
        raise FrameError("truncated request-chunk header",
                         request_id=request_id, code=E_BAD_FRAME)
    dtype_raw, total, offset, key_len = _REQUEST_CHUNK_HEAD.unpack_from(body)
    dtype = _checked_dtype(dtype_raw, request_id, "request chunk")
    rest = body[_REQUEST_CHUNK_HEAD.size:]
    key = _decode_key(rest, key_len, request_id)
    wire = WIRE_DTYPES[dtype]
    sample_bytes = rest[key_len:]
    if len(sample_bytes) % wire.itemsize:
        raise FrameError(
            f"request chunk carries {len(sample_bytes)} byte(s), not a "
            f"multiple of the {wire.name} item size", request_id=request_id,
            code=E_BAD_FRAME)
    samples = np.frombuffer(sample_bytes, dtype=wire).astype(np.float64,
                                                             copy=False)
    return RequestChunk(request_id=request_id, key=key, samples=samples,
                        dtype=dtype, n_steps_total=total, offset=offset)


def _decode_result_chunk(request_id: int, body: bytes) -> ResultChunk:
    if len(body) < _RESULT_CHUNK_HEAD.size:
        raise FrameError("truncated result-chunk header",
                         request_id=request_id, code=E_BAD_FRAME)
    dtype_raw, total, offset = _RESULT_CHUNK_HEAD.unpack_from(body)
    dtype = _checked_dtype(dtype_raw, request_id, "result chunk")
    wire = WIRE_DTYPES[dtype]
    sample_bytes = body[_RESULT_CHUNK_HEAD.size:]
    if len(sample_bytes) % wire.itemsize:
        raise FrameError(
            f"result chunk carries {len(sample_bytes)} byte(s), not a "
            f"multiple of the {wire.name} item size", request_id=request_id,
            code=E_BAD_FRAME)
    outputs = np.frombuffer(sample_bytes, dtype=wire).astype(np.float64,
                                                             copy=False)
    return ResultChunk(request_id=request_id, outputs=outputs, dtype=dtype,
                       n_steps_total=total, offset=offset)


@dataclass
class _Stream:
    """Accumulator of one in-flight chunk series."""

    key: str
    dtype: int
    total: int
    filled: int = 0
    parts: list = field(default_factory=list)


class ChunkAssembler:
    """Reassemble chunk series into whole :class:`Request` / :class:`Result`.

    One assembler per connection (per direction).  :meth:`feed` returns the
    completed message when a chunk finishes its series, ``None`` while the
    series is still streaming, and raises :class:`~repro.exceptions.
    FrameError` — attributed to the chunk's request id, with the offending
    stream already dropped — on any inconsistency: out-of-order or
    overlapping offsets, a first chunk not at offset 0, a key/dtype/total
    that changes mid-series, a declared total over ``max_samples``, or more
    than ``max_streams`` concurrently streaming requests (an attacker must
    not be able to grow per-connection buffers without bound by opening
    series it never finishes).
    """

    def __init__(self, max_samples: int | None = None,
                 max_streams: int = 64) -> None:
        self.max_samples = max_samples
        self.max_streams = max_streams
        self._streams: dict[tuple[int, int], _Stream] = {}

    def __len__(self) -> int:
        return len(self._streams)

    def _fail(self, stream_key, message: str, request_id: int):
        self._streams.pop(stream_key, None)
        raise FrameError(message, request_id=request_id, code=E_BAD_FRAME)

    def feed(self, chunk: RequestChunk | ResultChunk):
        """Absorb one chunk; the finished Request/Result, or ``None``."""
        if isinstance(chunk, RequestChunk):
            kind, key, samples = REQUEST_CHUNK, chunk.key, chunk.samples
        else:
            kind, key, samples = RESULT_CHUNK, "", chunk.outputs
        stream_key = (kind, chunk.request_id)
        stream = self._streams.get(stream_key)
        if stream is None:
            if chunk.offset != 0:
                self._fail(stream_key,
                           f"chunk stream must start at offset 0; got "
                           f"{chunk.offset}", chunk.request_id)
            if chunk.n_steps_total < 1:
                self._fail(stream_key,
                           "chunk stream declares an empty total",
                           chunk.request_id)
            if (self.max_samples is not None
                    and chunk.n_steps_total > self.max_samples):
                self._fail(stream_key,
                           f"chunk stream declares {chunk.n_steps_total} "
                           f"sample(s), over the per-request limit "
                           f"{self.max_samples}", chunk.request_id)
            if len(self._streams) >= self.max_streams:
                self._fail(stream_key,
                           f"too many concurrent chunk streams (limit "
                           f"{self.max_streams})", chunk.request_id)
            stream = _Stream(key=key, dtype=chunk.dtype,
                             total=chunk.n_steps_total)
            self._streams[stream_key] = stream
        else:
            if chunk.offset != stream.filled:
                self._fail(stream_key,
                           f"chunk at offset {chunk.offset} but the stream "
                           f"has {stream.filled} sample(s) (chunks must "
                           "arrive in order, without gaps or overlap)",
                           chunk.request_id)
            if (chunk.n_steps_total != stream.total
                    or chunk.dtype != stream.dtype or key != stream.key):
                self._fail(stream_key,
                           "chunk stream changed its key/dtype/total "
                           "mid-series", chunk.request_id)
        if samples.size == 0:
            self._fail(stream_key, "empty chunk in stream", chunk.request_id)
        if stream.filled + samples.size > stream.total:
            self._fail(stream_key,
                       f"chunk stream overflows its declared total "
                       f"{stream.total}", chunk.request_id)
        stream.parts.append(samples)
        stream.filled += samples.size
        if stream.filled < stream.total:
            return None
        del self._streams[stream_key]
        assembled = np.concatenate(stream.parts)
        if kind == REQUEST_CHUNK:
            return Request(request_id=chunk.request_id, key=stream.key,
                           samples=assembled, dtype=stream.dtype)
        return Result(request_id=chunk.request_id, outputs=assembled,
                      dtype=stream.dtype)
