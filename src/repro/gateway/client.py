"""Gateway clients: drive a remote model server from a few lines.

Two variants over the same wire protocol (:mod:`repro.gateway.protocol`):

* :class:`GatewayClient` — synchronous, stdlib sockets.  :meth:`submit`
  for one round trip, :meth:`submit_many` for pipelining: every request
  frame is streamed out while replies stream back concurrently (a
  ``selectors`` readiness loop interleaves the two), so a single connection
  sustains thousands of in-flight-batched requests without ever deadlocking
  against the gateway's per-connection backpressure.
* :class:`AsyncGatewayClient` — asyncio, for callers that already live on
  an event loop.  A background reader task matches reply frames to the
  awaiting futures by request id.

Both raise :class:`~repro.exceptions.GatewayError`:

* connecting to a closed (or never-started) gateway names the address and
  the refusal,
* a per-request error reply carries the server's message (which itself names
  the violated limit or the unknown key),
* a connection dropped mid-flight names how many requests were outstanding.

The minimal round trip::

    from repro.gateway import GatewayClient

    with GatewayClient("127.0.0.1", 7433) as client:
        output = client.submit(key, samples)            # one stimulus
        outputs = client.submit_many([(key, s) for s in stimuli])

Both clients can also subscribe to the gateway's push telemetry:
:meth:`~GatewayClient.subscribe_stats` yields periodic server-stats
snapshots (``ServeStats.as_dict()`` plus the gateway counters) and
:meth:`~GatewayClient.subscribe_events` streams the server's telemetry
events as dicts.  On the synchronous client a subscription iterator owns
the connection's receive stream — use a dedicated client instance for it;
the asyncio client multiplexes subscriptions alongside data submits.
"""

from __future__ import annotations

import asyncio
import selectors
import socket
import time

import numpy as np

from ..exceptions import FrameError, GatewayError
from . import protocol

__all__ = ["AsyncGatewayClient", "GatewayClient"]


def _connect_error(host: str, port: int, exc: Exception) -> GatewayError:
    return GatewayError(
        f"could not connect to gateway at {host}:{port}: {exc!r} — is the "
        "gateway running? (a closed gateway refuses new connections)")


class _ReplyBuffer:
    """Incremental frame parser over a byte stream."""

    def __init__(self, max_frame_bytes: int) -> None:
        self._buffer = bytearray()
        self._max = int(max_frame_bytes)

    def feed(self, data: bytes) -> list:
        """Consume bytes, return every complete decoded reply."""
        self._buffer.extend(data)
        replies = []
        prefix = protocol.LENGTH_PREFIX
        while len(self._buffer) >= prefix.size:
            (length,) = prefix.unpack_from(self._buffer)
            if length > self._max:
                raise GatewayError(
                    f"gateway sent a frame of {length} bytes, beyond this "
                    f"client's max_frame_bytes={self._max}")
            if len(self._buffer) < prefix.size + length:
                break
            payload = bytes(self._buffer[prefix.size:prefix.size + length])
            del self._buffer[:prefix.size + length]
            replies.append(protocol.decode_payload(payload))
        return replies


def _raise_if_fatal(reply) -> None:
    """A ``request_id == 0`` error frame fails the whole connection."""
    if isinstance(reply, protocol.ErrorReply) and reply.request_id == 0:
        raise GatewayError(
            f"gateway failed this connection (code {reply.code}): "
            f"{reply.message}")


class GatewayClient:
    """Synchronous TCP client of a :class:`~repro.gateway.server.Gateway`.

    Parameters
    ----------
    host / port:
        The gateway's bind address (``gateway.address`` unpacks into both).
    timeout:
        Wall-clock bound (seconds) on :meth:`submit` / :meth:`submit_many`.
    max_frame_bytes:
        Largest reply frame this client accepts (mirror of the server-side
        policy knob).  Requests larger than it stream out as chunk series
        automatically, and chunked replies are reassembled transparently.
    dtype:
        Wire dtype for this client's samples: ``"float64"`` (the default,
        lossless) or ``"float32"`` (half the bytes; the gateway upcasts at
        the edge and replies in kind, so outputs are float64 arrays either
        way, quantised to float32 precision).
    """

    def __init__(self, host: str, port: int, timeout: float = 60.0,
                 max_frame_bytes: int = 64 << 20, dtype="float64") -> None:
        self.host, self.port = host, int(port)
        self.timeout = float(timeout)
        self.max_frame_bytes = int(max_frame_bytes)
        self.dtype = protocol.dtype_code(dtype)
        self._next_id = 1
        self._closed = False
        try:
            self._sock = socket.create_connection((host, self.port),
                                                  timeout=self.timeout)
        except OSError as exc:
            raise _connect_error(host, self.port, exc) from None
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

    # -------------------------------------------------------------- lifecycle
    def close(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self._sock.close()
            except OSError:
                pass

    def __enter__(self) -> "GatewayClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------- submission
    def submit(self, key: str, samples) -> np.ndarray:
        """One request, one blocking round trip; returns the output row."""
        (output,) = self.submit_many([(key, samples)])
        return output

    def submit_many(self, requests, return_errors: bool = False) -> list:
        """Pipeline many requests over this one connection.

        ``requests`` is a sequence of ``(model_key, samples)`` pairs.
        Returns the output rows in request order.  Per-request failures
        raise the first :class:`~repro.exceptions.GatewayError` encountered
        — or, with ``return_errors=True``, are returned in place of that
        request's output so one bad request doesn't void its thousand good
        neighbours.
        """
        if self._closed:
            raise GatewayError(
                f"client connection to {self.host}:{self.port} is closed")
        requests = list(requests)
        if not requests:
            return []
        frames = []
        order: list[int] = []
        for key, samples in requests:
            request_id = self._next_id
            self._next_id += 1
            frames.extend(protocol.encode_request_frames(
                request_id, key, samples, dtype=self.dtype,
                max_frame_bytes=self.max_frame_bytes))
            order.append(request_id)
        try:
            results = self._pipeline(b"".join(frames), set(order))
        except GatewayError:
            # A fatal mid-pipeline failure (timeout, EOF, malformed frame)
            # loses the stream's frame alignment: bytes of a reply may have
            # been half-consumed, so no later call on this connection could
            # trust what it reads.  Close rather than corrupt.
            self.close()
            raise
        outputs = []
        for request_id in order:
            reply = results[request_id]
            if isinstance(reply, protocol.Result):
                outputs.append(reply.outputs)
                continue
            error = GatewayError(
                f"request {request_id} failed (code {reply.code}): "
                f"{reply.message}")
            if not return_errors:
                raise error
            outputs.append(error)
        return outputs

    def _pipeline(self, outbound: bytes, expected: set[int]) -> dict:
        """Interleave sends and receives until every reply arrived."""
        sock = self._sock
        sock.setblocking(False)
        buffer = _ReplyBuffer(self.max_frame_bytes)
        assembler = protocol.ChunkAssembler()
        results: dict[int, object] = {}
        view = memoryview(outbound)
        deadline = time.monotonic() + self.timeout
        selector = selectors.DefaultSelector()
        try:
            selector.register(sock, selectors.EVENT_READ
                              | (selectors.EVENT_WRITE if view else 0))
            while len(results) < len(expected):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise GatewayError(
                        f"timed out after {self.timeout:.1f} s with "
                        f"{len(expected) - len(results)} of {len(expected)} "
                        f"reply(ies) outstanding from {self.host}:{self.port}")
                for key_event, mask in selector.select(remaining):
                    if mask & selectors.EVENT_WRITE and view:
                        try:
                            sent = sock.send(view[:1 << 20])
                        except BlockingIOError:
                            sent = 0
                        except OSError as exc:
                            raise GatewayError(
                                f"connection to {self.host}:{self.port} "
                                f"failed mid-send: {exc!r}") from None
                        view = view[sent:]
                        if not view:
                            selector.modify(sock, selectors.EVENT_READ)
                    if mask & selectors.EVENT_READ:
                        try:
                            data = sock.recv(1 << 20)
                        except BlockingIOError:
                            continue
                        except OSError as exc:
                            raise GatewayError(
                                f"connection to {self.host}:{self.port} "
                                f"failed mid-receive: {exc!r}") from None
                        if not data:
                            raise GatewayError(
                                f"gateway at {self.host}:{self.port} closed "
                                f"the connection with "
                                f"{len(expected) - len(results)} request(s) "
                                "outstanding")
                        for reply in buffer.feed(data):
                            _raise_if_fatal(reply)
                            if isinstance(reply, protocol.ResultChunk):
                                reply = assembler.feed(reply)
                                if reply is None:
                                    continue    # series still streaming
                            if reply.request_id in expected:
                                results[reply.request_id] = reply
            return results
        except FrameError as exc:
            raise GatewayError(
                f"gateway at {self.host}:{self.port} sent a malformed "
                f"frame: {exc}") from None
        finally:
            selector.close()
            sock.setblocking(True)
            sock.settimeout(self.timeout)

    # ------------------------------------------------------------ subscriptions
    def subscribe_stats(self, interval_s: float = 0.0,
                        timeout: float | None = None):
        """Iterate periodic server-stats snapshots (dicts), forever.

        ``interval_s`` requests a cadence; the gateway clamps it up to its
        ``ServePolicy.stats_interval``.  ``timeout`` bounds the wait for
        each snapshot (``None`` blocks).  The iterator owns this
        connection's receive stream — use a dedicated client instance, and
        ``break`` /  ``close()`` to end the subscription.
        """
        request_id = self._next_id
        self._next_id += 1
        return self._subscribe(
            protocol.encode_stats_subscribe(request_id, interval_s),
            request_id, protocol.StatsFrame, timeout)

    def subscribe_events(self, topics=(), timeout: float | None = None):
        """Iterate streamed telemetry events (dicts), as they happen.

        ``topics`` filters by event class name (empty = every event); see
        :func:`repro.telemetry.event_topics`.  Each yielded dict is an
        event's ``as_dict()`` payload — pass it to
        :func:`repro.telemetry.event_from_dict` to get the typed event
        back.  Semantics otherwise match :meth:`subscribe_stats`.
        """
        request_id = self._next_id
        self._next_id += 1
        return self._subscribe(
            protocol.encode_events_subscribe(request_id, topics),
            request_id, protocol.EventFrame, timeout)

    def _subscribe(self, subscribe_frame: bytes, request_id: int,
                   frame_cls, timeout: float | None):
        if self._closed:
            raise GatewayError(
                f"client connection to {self.host}:{self.port} is closed")
        sock = self._sock
        sock.settimeout(self.timeout)
        try:
            sock.sendall(subscribe_frame)
        except OSError as exc:
            raise GatewayError(
                f"connection to {self.host}:{self.port} failed mid-send: "
                f"{exc!r}") from None
        return self._subscription_frames(request_id, frame_cls, timeout)

    def _subscription_frames(self, request_id: int, frame_cls,
                             timeout: float | None):
        sock = self._sock
        buffer = _ReplyBuffer(self.max_frame_bytes)
        sock.settimeout(timeout)
        try:
            while True:
                try:
                    data = sock.recv(1 << 20)
                except socket.timeout:
                    raise GatewayError(
                        f"timed out after {timeout:.1f} s waiting for the "
                        f"next telemetry frame from {self.host}:{self.port}"
                    ) from None
                except OSError as exc:
                    if self._closed:
                        return              # close() ended the subscription
                    raise GatewayError(
                        f"connection to {self.host}:{self.port} failed "
                        f"mid-receive: {exc!r}") from None
                if not data:
                    return                  # gateway closed: stream over
                try:
                    replies = buffer.feed(data)
                except FrameError as exc:
                    raise GatewayError(
                        f"gateway at {self.host}:{self.port} sent a "
                        f"malformed frame: {exc}") from None
                for reply in replies:
                    _raise_if_fatal(reply)
                    if isinstance(reply, protocol.ErrorReply) \
                            and reply.request_id == request_id:
                        raise GatewayError(
                            f"subscription {request_id} failed "
                            f"(code {reply.code}): {reply.message}")
                    if isinstance(reply, frame_cls) \
                            and reply.request_id == request_id:
                        yield reply.payload
        finally:
            if not self._closed:
                sock.settimeout(self.timeout)


class AsyncGatewayClient:
    """Asyncio client: ``await connect(...)``, then ``await submit(...)``.

    A background reader task resolves each in-flight future as its reply
    frame arrives, so any number of :meth:`submit` coroutines can be in
    flight concurrently (``submit_many`` is a thin ``gather`` over them).
    """

    def __init__(self, host: str, port: int,
                 max_frame_bytes: int = 64 << 20, dtype="float64") -> None:
        self.host, self.port = host, int(port)
        self.max_frame_bytes = int(max_frame_bytes)
        self.dtype = protocol.dtype_code(dtype)
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._reader_task: asyncio.Task | None = None
        self._pending: dict[int, asyncio.Future] = {}
        #: Live telemetry subscriptions: request id → queue the reader task
        #: routes that subscription's STATS/EVENT payloads into.
        self._streams: dict[int, asyncio.Queue] = {}
        self._next_id = 1
        self._closed = False
        #: Terminal connection failure; set by the reader task so later
        #: submits fail fast instead of awaiting a reply that can't come.
        self._dead: GatewayError | None = None

    @classmethod
    async def connect(cls, host: str, port: int,
                      max_frame_bytes: int = 64 << 20,
                      dtype="float64") -> "AsyncGatewayClient":
        client = cls(host, port, max_frame_bytes, dtype=dtype)
        try:
            client._reader, client._writer = await asyncio.open_connection(
                host, port)
        except OSError as exc:
            raise _connect_error(host, port, exc) from None
        client._reader_task = asyncio.ensure_future(client._read_replies())
        return client

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):   # repro: allow[REP104] reader died on its own error; close() must still succeed
                pass
        if self._writer is not None:
            try:
                self._writer.close()
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        self._fail_pending(GatewayError(
            f"client connection to {self.host}:{self.port} closed with "
            f"{len(self._pending)} request(s) outstanding"))

    async def __aenter__(self) -> "AsyncGatewayClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # ------------------------------------------------------------- submission
    async def submit(self, key: str, samples) -> np.ndarray:
        if self._closed or self._writer is None:
            raise GatewayError(
                f"client connection to {self.host}:{self.port} is closed")
        if self._dead is not None:
            raise self._dead
        request_id = self._next_id
        self._next_id += 1
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        try:
            self._writer.write(b"".join(protocol.encode_request_frames(
                request_id, key, samples, dtype=self.dtype,
                max_frame_bytes=self.max_frame_bytes)))
            await self._writer.drain()
        except (ConnectionError, OSError) as exc:
            self._pending.pop(request_id, None)
            raise self._dead or GatewayError(
                f"connection to {self.host}:{self.port} failed mid-send: "
                f"{exc!r}") from None
        return await future

    async def submit_many(self, requests, return_errors: bool = False) -> list:
        """Concurrent :meth:`submit` of ``(key, samples)`` pairs, in order."""
        results = await asyncio.gather(
            *(self.submit(key, samples) for key, samples in requests),
            return_exceptions=True)
        outputs = []
        for result in results:
            if isinstance(result, BaseException):
                if not return_errors or not isinstance(result, GatewayError):
                    raise result
                outputs.append(result)
            else:
                outputs.append(result)
        return outputs

    # ---------------------------------------------------------------- replies
    async def _read_replies(self) -> None:
        reader = self._reader
        assert reader is not None
        assembler = protocol.ChunkAssembler()
        try:
            while True:
                head = await reader.readexactly(protocol.LENGTH_PREFIX.size)
                (length,) = protocol.LENGTH_PREFIX.unpack(head)
                if length > self.max_frame_bytes:
                    raise GatewayError(
                        f"gateway sent a frame of {length} bytes, beyond "
                        f"this client's max_frame_bytes={self.max_frame_bytes}")
                reply = protocol.decode_payload(
                    await reader.readexactly(length))
                _raise_if_fatal(reply)
                if isinstance(reply, protocol.ResultChunk):
                    reply = assembler.feed(reply)
                    if reply is None:
                        continue            # series still streaming
                if isinstance(reply, (protocol.StatsFrame,
                                      protocol.EventFrame)):
                    stream = self._streams.get(reply.request_id)
                    if stream is not None:
                        stream.put_nowait(reply.payload)
                    continue
                if isinstance(reply, protocol.ErrorReply) \
                        and reply.request_id in self._streams:
                    self._streams[reply.request_id].put_nowait(GatewayError(
                        f"subscription {reply.request_id} failed "
                        f"(code {reply.code}): {reply.message}"))
                    continue
                future = self._pending.pop(reply.request_id, None)
                if future is None or future.done():
                    continue
                if isinstance(reply, protocol.Result):
                    future.set_result(reply.outputs)
                else:
                    future.set_exception(GatewayError(
                        f"request {reply.request_id} failed "
                        f"(code {reply.code}): {reply.message}"))
        except asyncio.CancelledError:
            raise
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            self._fail_pending(GatewayError(
                f"gateway at {self.host}:{self.port} closed the connection "
                f"with {len(self._pending)} request(s) outstanding"))
        except GatewayError as exc:
            self._fail_pending(exc)

    def _fail_pending(self, exc: GatewayError) -> None:
        if self._dead is None:
            self._dead = exc
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(exc)
        for stream in self._streams.values():
            stream.put_nowait(exc)

    # ------------------------------------------------------------ subscriptions
    async def subscribe_stats(self, interval_s: float = 0.0):
        """Async-iterate periodic server-stats snapshots (dicts).

        Unlike the synchronous client, subscriptions multiplex with
        concurrent :meth:`submit` calls on this same connection — the
        reader task routes each frame to its awaiting consumer.
        """
        request_id = self._next_id
        self._next_id += 1
        async for payload in self._subscribe(
                protocol.encode_stats_subscribe(request_id, interval_s),
                request_id):
            yield payload

    async def subscribe_events(self, topics=()):
        """Async-iterate streamed telemetry events (dicts)."""
        request_id = self._next_id
        self._next_id += 1
        async for payload in self._subscribe(
                protocol.encode_events_subscribe(request_id, topics),
                request_id):
            yield payload

    async def _subscribe(self, subscribe_frame: bytes, request_id: int):
        if self._closed or self._writer is None:
            raise GatewayError(
                f"client connection to {self.host}:{self.port} is closed")
        if self._dead is not None:
            raise self._dead
        queue: asyncio.Queue = asyncio.Queue()
        self._streams[request_id] = queue
        try:
            self._writer.write(subscribe_frame)
            await self._writer.drain()
        except (ConnectionError, OSError) as exc:
            self._streams.pop(request_id, None)
            raise self._dead or GatewayError(
                f"connection to {self.host}:{self.port} failed mid-send: "
                f"{exc!r}") from None
        try:
            while True:
                item = await queue.get()
                if isinstance(item, GatewayError):
                    # Connection death ends the stream cleanly; a
                    # subscription-specific error frame raises.
                    if item is self._dead:
                        return
                    raise item
                yield item
        finally:
            self._streams.pop(request_id, None)
