"""Network front-end: serve compiled models to remote clients over TCP.

:mod:`repro.serve` made extracted models servable to in-process callers —
micro-batched, sharded, answered through futures.  This package opens that
scheduler to the network: a :class:`Gateway` accepts thousands of concurrent
TCP connections on one asyncio event loop, speaks a compact length-prefixed
binary protocol (model key, dtype/shape header, raw little-endian samples —
float64 natively, float32 on client opt-in for half the bytes, chunked
streaming for stimuli beyond ``max_frame_bytes``; no third-party
dependencies), and funnels every request into the same
:class:`~repro.serve.server.ModelServer` the in-process callers use.  The
server's per-model dispatch lanes answer them concurrently, one lane per
model, so one model's traffic never stalls another's.

* :mod:`~repro.gateway.protocol` — the frame format and its encoders /
  decoders (pure functions over bytes; every malformation is a named
  :class:`~repro.exceptions.FrameError`);
* :mod:`~repro.gateway.server` — :class:`Gateway`, the asyncio front-end
  with admission control (``max_connections``) and per-connection
  backpressure (``max_inflight_per_conn`` — a connection at its cap stops
  being read, not buffered);
* :mod:`~repro.gateway.client` — :class:`GatewayClient` (synchronous, with
  pipelined :meth:`~repro.gateway.client.GatewayClient.submit_many`) and
  :class:`AsyncGatewayClient`; both grow ``subscribe_stats()`` /
  ``subscribe_events()`` iterators over the gateway's push-telemetry
  STATS / EVENT frames (see :mod:`repro.telemetry`).

Serving over TCP in a few lines::

    from repro.gateway import Gateway, GatewayClient
    from repro.serve import ModelServer, ServePolicy

    policy = ServePolicy(max_batch=256, max_wait=2e-3,
                         n_workers=4, n_lanes=4)
    with ModelServer(registry, policy) as server, \\
            Gateway(server, "0.0.0.0", 7433) as gateway:
        ...                                    # serve until shut down

    # any other process / host:
    with GatewayClient(host, 7433) as client:
        outputs = client.submit_many([(key, samples) for samples in stimuli])

See ``examples/gateway_cluster.py`` for the multi-process demo and
``benchmarks/test_gateway_speedup.py`` for the gated lane-overlap
acceptance run.
"""

from .client import AsyncGatewayClient, GatewayClient
from .protocol import (
    DTYPE_FLOAT32,
    DTYPE_FLOAT64,
    ChunkAssembler,
    ErrorReply,
    EventFrame,
    EventsSubscribe,
    Request,
    RequestChunk,
    Result,
    ResultChunk,
    StatsFrame,
    StatsSubscribe,
    decode_payload,
    encode_error,
    encode_event,
    encode_events_subscribe,
    encode_request,
    encode_request_frames,
    encode_result,
    encode_result_frames,
    encode_stats,
    encode_stats_subscribe,
)
from .server import Gateway

__all__ = [
    "AsyncGatewayClient",
    "ChunkAssembler",
    "DTYPE_FLOAT32",
    "DTYPE_FLOAT64",
    "ErrorReply",
    "EventFrame",
    "EventsSubscribe",
    "Gateway",
    "GatewayClient",
    "Request",
    "RequestChunk",
    "Result",
    "ResultChunk",
    "StatsFrame",
    "StatsSubscribe",
    "decode_payload",
    "encode_error",
    "encode_event",
    "encode_events_subscribe",
    "encode_request",
    "encode_request_frames",
    "encode_result",
    "encode_result_frames",
    "encode_stats",
    "encode_stats_subscribe",
]
