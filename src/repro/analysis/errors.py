"""Error metrics used by the paper's evaluation (Figs. 7-9, Table I).

The paper quotes three figures of merit:

* the *hyperplane* RMSE of the fitted model against the TFT data, expressed in
  dB for the gain and in degrees for the phase (Figs. 7 and 8),
* the time-domain RMSE against the SPICE reference for the bit-pattern test
  (Fig. 9 / Table I),
* and the frequency-domain RMSE column of Table I (again in dB).

The helpers here compute those quantities and the full error *contours* over
the state/frequency plane so the figures can be regenerated.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "db",
    "gain_error_db",
    "phase_error_deg",
    "surface_rmse_db",
    "time_domain_rmse",
    "BatchErrorReport",
    "batched_waveform_errors",
    "SurfaceErrorReport",
    "compare_surfaces",
]

_FLOOR = 1e-300


def db(values: np.ndarray | float) -> np.ndarray | float:
    """Magnitude in decibel, ``20*log10(|x|)`` with a floor to avoid -inf."""
    return 20.0 * np.log10(np.maximum(np.abs(values), _FLOOR))


def gain_error_db(reference: np.ndarray, model: np.ndarray) -> np.ndarray:
    """Absolute complex deviation expressed in dB (the paper's gain error).

    The paper's Fig. 7/8 error contours plot ``20 log10 |T_model - T_data|``;
    a value of -60 dB therefore means an absolute deviation of 1e-3.
    """
    return db(np.asarray(model) - np.asarray(reference))


def phase_error_deg(reference: np.ndarray, model: np.ndarray) -> np.ndarray:
    """Phase deviation in degrees, wrapped to (-180, 180]."""
    delta = np.angle(np.asarray(model)) - np.angle(np.asarray(reference))
    return np.degrees((delta + np.pi) % (2.0 * np.pi) - np.pi)


def surface_rmse_db(reference: np.ndarray, model: np.ndarray) -> float:
    """RMS of the absolute deviation over a surface, expressed in dB."""
    deviation = np.asarray(model) - np.asarray(reference)
    return float(db(np.sqrt(np.mean(np.abs(deviation) ** 2))))


def time_domain_rmse(reference: np.ndarray, model: np.ndarray) -> float:
    """Plain RMSE between two sampled waveforms (the paper's Table I metric)."""
    reference = np.asarray(reference, dtype=float).ravel()
    model = np.asarray(model, dtype=float).ravel()
    if reference.shape != model.shape:
        raise ValueError("waveforms must have the same length")
    return float(np.sqrt(np.mean((reference - model) ** 2)))


@dataclass
class BatchErrorReport:
    """Per-waveform error metrics of a batch of model outputs.

    Produced by :func:`batched_waveform_errors` for ``(n_waveforms, n_steps)``
    output stacks — the shape the compiled runtime
    (:mod:`repro.runtime`) serves — with one row of metrics per waveform.
    ``relative_rmse`` normalises each row's RMSE by the RMS of its reference
    waveform, which is the figure compared against the extraction's
    ``error_bound`` by the validation harness.
    """

    rmse: np.ndarray               # (B,) absolute RMSE per waveform
    relative_rmse: np.ndarray      # (B,) RMSE / RMS(reference)
    max_abs_error: np.ndarray      # (B,) worst-sample deviation per waveform

    @property
    def n_waveforms(self) -> int:
        return int(self.rmse.size)

    @property
    def worst_index(self) -> int:
        """Index of the waveform with the largest relative RMSE."""
        return int(np.argmax(self.relative_rmse))

    def max_relative_rmse(self) -> float:
        return float(np.max(self.relative_rmse))

    def summary(self) -> str:
        return (f"{self.n_waveforms} waveform(s): "
                f"max relative RMSE {self.max_relative_rmse():.2e} "
                f"(waveform {self.worst_index}), "
                f"max abs error {float(np.max(self.max_abs_error)):.3e}")


def batched_waveform_errors(reference: np.ndarray,
                            model: np.ndarray) -> BatchErrorReport:
    """Row-wise error metrics for stacked waveforms, shape ``(B, K)``.

    1-D inputs are treated as a batch of one.  Rows whose reference is
    identically zero fall back to an absolute normalisation (relative RMSE
    equals the plain RMSE) instead of dividing by zero.
    """
    reference = np.atleast_2d(np.asarray(reference, dtype=float))
    model = np.atleast_2d(np.asarray(model, dtype=float))
    if reference.shape != model.shape:
        raise ValueError(
            f"waveform batches must have the same shape; got {model.shape} "
            f"vs reference {reference.shape}")
    deviation = model - reference
    rmse = np.sqrt(np.mean(deviation ** 2, axis=1))
    scale = np.sqrt(np.mean(reference ** 2, axis=1))
    relative = rmse / np.where(scale > 0.0, scale, 1.0)
    return BatchErrorReport(
        rmse=rmse,
        relative_rmse=relative,
        max_abs_error=np.max(np.abs(deviation), axis=1),
    )


@dataclass
class SurfaceErrorReport:
    """Error contours of a fitted model against TFT reference data."""

    states: np.ndarray
    frequencies: np.ndarray
    gain_error: np.ndarray          # dB, shape (K, L)
    phase_error: np.ndarray         # degrees, shape (K, L)
    max_gain_error_db: float
    max_phase_error_deg: float
    rms_gain_error_db: float
    relative_rms: float

    def worst_region(self) -> tuple[float, float]:
        """(state, frequency) where the gain error peaks."""
        k, l = np.unravel_index(int(np.argmax(self.gain_error)), self.gain_error.shape)
        return float(self.states[k]), float(self.frequencies[l])

    def summary(self) -> str:
        return (f"max gain error {self.max_gain_error_db:.1f} dB, "
                f"max phase error {self.max_phase_error_deg:.0f} deg, "
                f"RMS gain error {self.rms_gain_error_db:.1f} dB, "
                f"relative RMS {self.relative_rms:.2e}")


def compare_surfaces(reference: np.ndarray, model: np.ndarray,
                     states: np.ndarray, frequencies: np.ndarray) -> SurfaceErrorReport:
    """Full Fig. 7/8-style comparison of a model surface against TFT data."""
    reference = np.asarray(reference, dtype=complex)
    model = np.asarray(model, dtype=complex)
    if reference.shape != model.shape:
        raise ValueError("surfaces must have the same shape")
    gain_err = gain_error_db(reference, model)
    phase_err = phase_error_deg(reference, model)
    scale = float(np.sqrt(np.mean(np.abs(reference) ** 2))) or 1.0
    deviation = float(np.sqrt(np.mean(np.abs(model - reference) ** 2)))
    return SurfaceErrorReport(
        states=np.asarray(states, dtype=float),
        frequencies=np.asarray(frequencies, dtype=float),
        gain_error=gain_err,
        phase_error=phase_err,
        max_gain_error_db=float(gain_err.max()),
        max_phase_error_deg=float(np.abs(phase_err).max()),
        rms_gain_error_db=surface_rmse_db(reference, model),
        relative_rms=deviation / scale,
    )
