"""Error metrics, speed-up measurement and report tables."""

from .errors import (
    BatchErrorReport,
    SurfaceErrorReport,
    batched_waveform_errors,
    compare_surfaces,
    db,
    gain_error_db,
    phase_error_deg,
    surface_rmse_db,
    time_domain_rmse,
)
from .report import ComparisonTable, ModelComparisonRow, ascii_table, measure_speedup

__all__ = [
    "db",
    "gain_error_db",
    "phase_error_deg",
    "surface_rmse_db",
    "time_domain_rmse",
    "BatchErrorReport",
    "batched_waveform_errors",
    "compare_surfaces",
    "SurfaceErrorReport",
    "ComparisonTable",
    "ModelComparisonRow",
    "ascii_table",
    "measure_speedup",
]
