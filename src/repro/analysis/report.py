"""Comparison tables and speed-up measurements (the paper's Table I)."""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..units import format_si
from .errors import surface_rmse_db, time_domain_rmse

__all__ = ["ModelComparisonRow", "ComparisonTable", "measure_speedup", "ascii_table"]


@dataclass
class ModelComparisonRow:
    """One row of the Table I style comparison."""

    name: str
    surface_rmse_db: float
    time_domain_rmse: float
    build_time_s: float
    speedup: float
    fully_automated: bool

    def cells(self) -> list[str]:
        return [
            self.name,
            f"{self.surface_rmse_db:.1f} dB",
            f"{self.time_domain_rmse:.4f}",
            format_si(self.build_time_s, "s"),
            f"{self.speedup:.1f}x",
            "YES" if self.fully_automated else "NO",
        ]


@dataclass
class ComparisonTable:
    """Collection of comparison rows with the paper's Table I columns."""

    rows: list[ModelComparisonRow] = field(default_factory=list)
    reference_name: str = "SPICE"

    HEADER = ["Model", "RMSE", "Time-domain RMSE", "Build time", "Speedup", "Fully automated"]

    def add(self, row: ModelComparisonRow) -> None:
        self.rows.append(row)

    def render(self) -> str:
        return ascii_table(self.HEADER, [row.cells() for row in self.rows])

    def best_by_accuracy(self) -> ModelComparisonRow:
        return min(self.rows, key=lambda r: r.surface_rmse_db)


def ascii_table(header: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Minimal fixed-width ASCII table renderer (no external dependencies)."""
    columns = len(header)
    widths = [len(str(header[i])) for i in range(columns)]
    for row in rows:
        for i in range(columns):
            widths[i] = max(widths[i], len(str(row[i])))
    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(str(cells[i]).ljust(widths[i]) for i in range(columns))
    separator = "-+-".join("-" * w for w in widths)
    lines = [render_row(header), separator]
    lines.extend(render_row(row) for row in rows)
    return "\n".join(lines)


def measure_speedup(reference_runner: Callable[[], np.ndarray],
                    model_runner: Callable[[], np.ndarray],
                    repeats: int = 1) -> tuple[float, float, float]:
    """Wall-clock speed-up of a model against its reference simulation.

    Both callables are executed ``repeats`` times; the minimum wall time of
    each is used (the usual benchmarking convention).  Returns
    ``(reference_seconds, model_seconds, speedup)``.
    """
    def best_time(runner: Callable[[], np.ndarray]) -> float:
        best = np.inf
        for _ in range(max(1, repeats)):
            start = _time.perf_counter()
            runner()
            best = min(best, _time.perf_counter() - start)
        return best

    reference_seconds = best_time(reference_runner)
    model_seconds = best_time(model_runner)
    speedup = reference_seconds / model_seconds if model_seconds > 0 else np.inf
    return reference_seconds, model_seconds, speedup
